"""Circuit breaker: the state machine and its backend wiring."""

from __future__ import annotations

import pytest

from repro.crypto.fast.exec import (
    ResiliencePolicy,
    ThreadPoolBackend,
)
from repro.errors import WorkerCrashError
from repro.resilience import BreakerPolicy, BreakerState, CircuitBreaker
from repro.resilience import stats


class TestBreakerPolicy:
    def test_defaults_are_sane(self):
        policy = BreakerPolicy()
        assert policy.fail_threshold >= 1
        assert policy.cooldown_spans >= 1
        assert policy.probe_successes >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fail_threshold": 0},
            {"cooldown_spans": 0},
            {"probe_successes": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BreakerPolicy(**kwargs)


class TestStateMachine:
    def test_starts_closed_and_passes_traffic(self):
        breaker = CircuitBreaker(BreakerPolicy())
        assert breaker.state is BreakerState.CLOSED
        assert not breaker.should_bypass()

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerPolicy(fail_threshold=3))
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert breaker.should_bypass()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(BreakerPolicy(fail_threshold=2))
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_cooldown_then_half_open_probe(self):
        breaker = CircuitBreaker(
            BreakerPolicy(fail_threshold=1, cooldown_spans=2)
        )
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        # Two spans route around the sick backend...
        assert breaker.should_bypass()
        assert breaker.should_bypass()
        # ...then the cooldown expires and the next span probes.
        assert not breaker.should_bypass()
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.bypasses == 2

    def test_half_open_success_closes(self):
        breaker = CircuitBreaker(
            BreakerPolicy(
                fail_threshold=1, cooldown_spans=1, probe_successes=2
            )
        )
        breaker.record_failure()
        breaker.should_bypass()  # cooldown span
        breaker.should_bypass()  # transitions to HALF_OPEN
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.recoveries == 1

    def test_half_open_failure_retrips(self):
        breaker = CircuitBreaker(
            BreakerPolicy(fail_threshold=1, cooldown_spans=1)
        )
        breaker.record_failure()
        breaker.should_bypass()
        breaker.should_bypass()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2

    def test_reset_restores_closed(self):
        breaker = CircuitBreaker(BreakerPolicy(fail_threshold=1))
        breaker.record_failure()
        breaker.reset()
        assert breaker.state is BreakerState.CLOSED
        assert not breaker.should_bypass()

    def test_stats_recorded(self):
        base = stats.snapshot()
        breaker = CircuitBreaker(
            BreakerPolicy(
                fail_threshold=1, cooldown_spans=1, probe_successes=1
            )
        )
        breaker.record_failure()
        breaker.should_bypass()
        breaker.should_bypass()
        breaker.record_success()
        delta = stats.delta(base)
        assert delta["breaker_trips"] == 1
        assert delta["breaker_bypasses"] == 1
        assert delta["breaker_recoveries"] == 1


class _AlwaysCrash:
    def __call__(self, value):
        raise WorkerCrashError("scripted crash")


class TestBackendWiring:
    def test_repeated_span_failures_trip_and_bypass(self):
        backend = ThreadPoolBackend(2)
        # degrade=False keeps the failures on the thread pool itself
        # (sticky chain degradation would otherwise reroute every later
        # span before the breaker ever saw it).
        policy = ResiliencePolicy(
            max_retries=0,
            backoff_base=0.0,
            backoff_cap=0.0,
            degrade=False,
            breaker=BreakerPolicy(fail_threshold=2, cooldown_spans=100),
        )
        try:
            with pytest.raises(WorkerCrashError):
                backend.run([(_AlwaysCrash(), (1,))], policy=policy)
            assert backend.breaker.state is BreakerState.CLOSED
            with pytest.raises(WorkerCrashError):
                backend.run([(_AlwaysCrash(), (1,))], policy=policy)
            assert backend.breaker.state is BreakerState.OPEN
            assert backend.breaker.trips == 1
            # An OPEN breaker routes new spans straight to the fallback
            # (inline) without paying the failure tax; results are
            # still correct.
            results = backend.run([(int, ("42",))], policy=policy)
            assert results == [42]
            assert backend.breaker.bypasses == 1
        finally:
            backend.close()

    def test_reset_degradation_also_resets_the_breaker(self):
        backend = ThreadPoolBackend(2)
        policy = ResiliencePolicy(
            max_retries=0,
            backoff_base=0.0,
            backoff_cap=0.0,
            degrade=False,
            breaker=BreakerPolicy(fail_threshold=1),
        )
        try:
            with pytest.raises(WorkerCrashError):
                backend.run([(_AlwaysCrash(), (1,))], policy=policy)
            assert backend.breaker.state is BreakerState.OPEN
            backend.reset_degradation()
            assert backend.breaker.state is BreakerState.CLOSED
        finally:
            backend.close()

    def test_healthy_spans_keep_the_breaker_closed(self):
        backend = ThreadPoolBackend(2)
        policy = ResiliencePolicy(
            breaker=BreakerPolicy(fail_threshold=1)
        )
        try:
            assert backend.run([(int, ("7",))], policy=policy) == [7]
            assert backend.breaker.state is BreakerState.CLOSED
        finally:
            backend.close()

    def test_no_breaker_without_policy(self):
        backend = ThreadPoolBackend(2)
        try:
            backend.run([(int, ("7",))])
            assert backend.breaker is None
        finally:
            backend.close()
