"""Poisoned-packet quarantine: bisect isolation in the batch engine."""

from __future__ import annotations

import pytest

from repro.crypto.fast.batch import seal_open_many
from repro.crypto.fast.exec import make_backend
from repro.errors import InjectedFault, QuarantinedPacketError
from repro.resilience import FaultPlan, set_fault_plan

KEY = bytes(range(16))


def _packets(count, size=512):
    return [
        ((i + 1).to_bytes(13, "big"), bytes([(i * 7) & 0xFF]) * size)
        for i in range(count)
    ]


def _poison(plan, packets, *slots):
    for slot in slots:
        plan.poison(packets[slot][0])


class TestIsolate:
    @pytest.mark.parametrize("spec", ["inline", "thread:2", "process:2"])
    def test_poisoned_seal_quarantines_alone(self, spec):
        packets = _packets(16)
        clean, _ = seal_open_many("gcm", KEY, packets, [], 16)
        plan = FaultPlan(seed=1)
        _poison(plan, packets, 5)
        backend = make_backend(spec)
        set_fault_plan(plan)
        try:
            sealed, _ = seal_open_many(
                "gcm", KEY, packets, [], 16, backend=backend, isolate=True
            )
        finally:
            set_fault_plan(None)
            backend.close()
        assert isinstance(sealed[5], QuarantinedPacketError)
        for index, result in enumerate(sealed):
            if index != 5:
                assert result == clean[index]

    def test_multiple_poisoned_packets_each_quarantine(self):
        packets = _packets(12)
        clean, _ = seal_open_many("ccm", KEY, packets, [], 8)
        plan = FaultPlan(seed=2)
        _poison(plan, packets, 0, 7, 11)
        set_fault_plan(plan)
        try:
            sealed, _ = seal_open_many(
                "ccm", KEY, packets, [], 8, isolate=True
            )
        finally:
            set_fault_plan(None)
        for index, result in enumerate(sealed):
            if index in (0, 7, 11):
                assert isinstance(result, QuarantinedPacketError)
            else:
                assert result == clean[index]

    def test_open_direction_quarantines_too(self):
        packets = _packets(8)
        sealed, _ = seal_open_many("gcm", KEY, packets, [], 16)
        opens = [
            (nonce, ciphertext, tag)
            for (nonce, _), (ciphertext, tag) in zip(packets, sealed)
        ]
        plan = FaultPlan(seed=3)
        plan.poison(opens[2][0])
        set_fault_plan(plan)
        try:
            _, opened = seal_open_many(
                "gcm", KEY, [], opens, 16, isolate=True
            )
        finally:
            set_fault_plan(None)
        assert isinstance(opened[2], QuarantinedPacketError)
        for index, plaintext in enumerate(opened):
            if index != 2:
                assert plaintext == packets[index][1]

    def test_without_isolate_the_injected_fault_propagates(self):
        packets = _packets(8)
        plan = FaultPlan(seed=4)
        _poison(plan, packets, 3)
        set_fault_plan(plan)
        try:
            with pytest.raises(InjectedFault):
                seal_open_many("gcm", KEY, packets, [], 16)
        finally:
            set_fault_plan(None)
