"""End-to-end self-healing: dead letters, key retries, survivors.

The resilience invariant, asserted at the radio boundary: under any
injected fault plan, every packet of the fault-free run still
completes, survivors are byte-identical, and per-channel completion
order is preserved — failed packets land in a dead-letter queue with
the reason recorded, never vanish and never take batch-mates down.
"""

from __future__ import annotations

import pytest

from repro.crypto.fast.exec import ProcessPoolBackend, ResiliencePolicy
from repro.mccp.channel import FlushPolicy
from repro.radio.sdr_platform import ChannelConfig, SdrPlatform
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern
from repro.resilience import FaultPlan, ScriptedFault, set_fault_plan

FLUSH = FlushPolicy(coalesce_limit=32, flush_deadline=8192)
FAST = ResiliencePolicy(max_retries=2, backoff_base=0.0, backoff_cap=0.0)


def _configs(packets=24):
    configs = []
    for index, standard in enumerate(
        (RadioStandard.WIFI, RadioStandard.SATCOM, RadioStandard.WIMAX)
    ):
        key = bytes([index] * (32 if standard is RadioStandard.SATCOM else 16))
        configs.append(
            ChannelConfig(
                standard,
                key,
                TrafficPattern.SATURATING,
                packets=packets,
                rx_fraction=0.3,
                corrupt_rate=0.1,
            )
        )
    return configs


def _run(plan, configs=None, backend=None, dataplane="batched", seed=17):
    previous = set_fault_plan(plan)
    try:
        platform = SdrPlatform(core_count=4, seed=seed)
        report = platform.run_workload(
            configs or _configs(),
            dataplane=dataplane,
            flush_policy=FLUSH,
            backend=backend,
        )
        transfers = {
            (t.channel_id, t.sequence): (t.payload, t.tag, t.ok)
            for t in platform.comm.completed.values()
        }
        order = {}
        for t in platform.comm.completed.values():
            order.setdefault(t.channel_id, []).append(t.sequence)
        return platform, report, transfers, order
    finally:
        set_fault_plan(previous)


def _assert_survivors_identical(baseline, faulted):
    assert set(faulted) == set(baseline)
    for key, (payload, tag, ok) in faulted.items():
        if ok:
            assert baseline[key] == (payload, tag, True)


class TestDeadLetterQueue:
    def test_poisoned_packets_route_to_dead_letters(self):
        _, base_report, baseline, base_order = _run(None)
        plan = FaultPlan(seed=5, rates={"batch_error": 0.2})
        platform, report, faulted, order = _run(plan)
        _assert_survivors_identical(baseline, faulted)
        assert order == base_order
        assert report.quarantined > 0
        assert report.dead_lettered >= report.quarantined
        # Dead letters are per-channel, reason-stamped, and excluded
        # from the auth-failure count.
        assert platform.comm.dead_letter
        for channel_id, transfers in platform.comm.dead_letter.items():
            for transfer in transfers:
                assert not transfer.ok
                assert transfer.extra["dead_letter"]
                assert not faulted[(channel_id, transfer.sequence)][2]
        assert report.auth_failures == base_report.auth_failures

    def test_scripted_single_packet_fault(self):
        _, _, baseline, _ = _run(None)
        plan = FaultPlan(
            scripted=(ScriptedFault("batch_error", channel=1, sequence=3),)
        )
        platform, report, faulted, _ = _run(plan)
        _assert_survivors_identical(baseline, faulted)
        assert report.quarantined == 1
        assert report.dead_lettered == 1
        assert [t.sequence for t in platform.comm.dead_letter[1]] == [3]
        channel = platform.mccp.scheduler.channels[1]
        assert len(channel.dead_letters) == 1
        assert channel.dead_letters[0].sequence == 3

    def test_key_error_exhaustion_dead_letters_the_batch(self):
        _, _, baseline, base_order = _run(None)
        # Every fetch attempt for channel 2 fails: retried, exhausted,
        # dead-lettered; the other channels are untouched.
        plan = FaultPlan(
            scripted=(ScriptedFault("key_error", channel=2, times=10**9),)
        )
        platform, report, faulted, order = _run(plan)
        _assert_survivors_identical(baseline, faulted)
        assert order == base_order
        assert report.retries > 0
        assert report.quarantined == 0
        assert report.dead_lettered > 0
        assert set(platform.comm.dead_letter) == {2}
        assert all(not faulted[(2, seq)][2] for seq in order[2])
        for channel_id in (0, 1):
            for seq in order[channel_id]:
                assert faulted[(channel_id, seq)] == baseline[(channel_id, seq)]

    def test_transient_key_error_recovers_without_drops(self):
        _, _, baseline, _ = _run(None)
        plan = FaultPlan(
            scripted=(ScriptedFault("key_error", channel=0, times=1),)
        )
        _, report, faulted, _ = _run(plan)
        assert faulted == baseline
        assert report.retries > 0
        assert report.dead_lettered == 0


class TestCoreStall:
    def test_stall_slows_but_never_corrupts(self):
        configs = _configs(packets=8)
        _, base_report, baseline, base_order = _run(
            None, configs=configs, dataplane="cores"
        )
        plan = FaultPlan(seed=6, rates={"core_stall": 0.4}, stall_cycles=4096)
        _, report, faulted, order = _run(
            plan, configs=configs, dataplane="cores"
        )
        assert faulted == baseline
        assert order == base_order
        assert report.faults_injected > 0
        assert report.total_cycles > base_report.total_cycles


class TestWorkerCrashAcceptance:
    def test_width_32_crash_storm_completes_via_degradation(self, hang_guard):
        """ISSUE 6 acceptance: a worker-crash injection at coalesce
        width 32 completes via backend degradation instead of raising."""
        configs = [
            ChannelConfig(
                RadioStandard.WIFI,
                bytes(16),
                TrafficPattern.SATURATING,
                packets=64,
            )
        ]
        _, _, baseline, base_order = _run(None, configs=configs)
        plan = FaultPlan(scripted=(ScriptedFault("worker_crash", times=10**9),))
        backend = ProcessPoolBackend(2)
        backend.resilience = FAST
        try:
            with hang_guard(120.0):
                _, report, faulted, order = _run(
                    plan, configs=configs, backend=backend
                )
        finally:
            backend.close()
        assert faulted == baseline
        assert order == base_order
        assert report.degradations >= 1
        assert any(
            reason.startswith("process -> thread")
            for reason in report.degradation_reasons
        )
        assert report.dead_lettered == 0

    def test_report_carries_resilience_counters(self):
        _, report, _, _ = _run(FaultPlan(seed=8, rates={"batch_error": 0.2}))
        assert report.faults_injected > 0
        assert report.quarantined == report.dead_lettered > 0
        assert report.degradation_reasons == []


class TestEnvSeeding:
    def test_repro_faults_env_drives_the_dataplane(self, monkeypatch):
        _, _, baseline, _ = _run(None)
        monkeypatch.setenv("REPRO_FAULTS", "batch_error=0.2,seed=5")
        set_fault_plan(None)  # next active_plan() re-reads the env
        try:
            platform, report, faulted, _ = _run(None)
        finally:
            set_fault_plan(None)
        _assert_survivors_identical(baseline, faulted)
        assert report.quarantined > 0
        assert platform.comm.dead_letter
