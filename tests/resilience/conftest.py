"""Isolation for the fault-injection tests.

Every test starts with no active fault plan and zeroed recovery
counters, and cannot leak either into the rest of the suite.
"""

from __future__ import annotations

import pytest

from repro.resilience import set_fault_plan, stats


@pytest.fixture(autouse=True)
def _clean_resilience_state():
    set_fault_plan(None)
    stats.reset()
    yield
    set_fault_plan(None)
    stats.reset()
