"""Fault plans: determinism, scripting, poison, env seeding."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import WorkerCrashError
from repro.resilience import (
    SITES,
    FaultPlan,
    FaultPoint,
    ScriptedFault,
    active_plan,
    injected_faults,
    plan_from_spec,
    set_fault_plan,
    stats,
)
from repro.resilience.faults import executing


class TestDecide:
    def test_pure_function_of_seed_site_key_attempt(self):
        plan = FaultPlan(seed=7, rates={"worker_crash": 0.5})
        first = [plan.decide("worker_crash", (0, i)) for i in range(64)]
        again = [plan.decide("worker_crash", (0, i)) for i in range(64)]
        assert first == again
        assert any(first) and not all(first)

    def test_distinct_seeds_give_distinct_schedules(self):
        a = FaultPlan(seed=1, rates={"batch_error": 0.5})
        b = FaultPlan(seed=2, rates={"batch_error": 0.5})
        keys = [(0, i) for i in range(128)]
        assert [a.decide("batch_error", k) for k in keys] != [
            b.decide("batch_error", k) for k in keys
        ]

    def test_attempt_rerolls_the_decision(self):
        plan = FaultPlan(seed=3, rates={"worker_crash": 0.5})
        decisions = {
            plan.decide("worker_crash", (1, 1), attempt) for attempt in range(16)
        }
        assert decisions == {True, False}

    def test_rate_zero_never_fires_rate_one_always(self):
        plan = FaultPlan(seed=0, rates={"slow_sweep": 1.0})
        assert plan.decide("slow_sweep", (9, 9))
        assert not plan.decide("worker_hang", (9, 9))

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(rates={"meteor_strike": 0.5})
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(scripted=(ScriptedFault("meteor_strike"),))

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="within"):
            FaultPlan(rates={"worker_crash": 1.5})


class TestScripted:
    def test_exact_channel_sequence_match(self):
        plan = FaultPlan(
            scripted=(ScriptedFault("batch_error", channel=2, sequence=5),)
        )
        assert plan.decide("batch_error", (2, 5))
        assert not plan.decide("batch_error", (2, 6))
        assert not plan.decide("batch_error", (3, 5))
        assert not plan.decide("worker_crash", (2, 5))

    def test_wildcards(self):
        plan = FaultPlan(scripted=(ScriptedFault("key_error", channel=1),))
        assert plan.decide("key_error", (1, 0))
        assert plan.decide("key_error", (1, 99))
        assert not plan.decide("key_error", (0, 0))

    def test_times_bounds_attempts(self):
        plan = FaultPlan(scripted=(ScriptedFault("worker_crash", times=2),))
        assert plan.decide("worker_crash", (0, 0), attempt=0)
        assert plan.decide("worker_crash", (0, 0), attempt=1)
        assert not plan.decide("worker_crash", (0, 0), attempt=2)


class TestPoison:
    def test_membership_survives_pickling(self):
        plan = FaultPlan(seed=1)
        plan.poison(b"\x01" * 12)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.is_poisoned(b"\x01" * 12)
        assert not clone.is_poisoned(b"\x02" * 12)


class TestDirective:
    def test_worker_crash_raises_outside_pool_worker(self):
        plan = FaultPlan(scripted=(ScriptedFault("worker_crash", times=1),))
        point = FaultPoint(plan, (0, 0))
        with pytest.raises(WorkerCrashError):
            point.directive(0, "thread").apply()
        # The attempt re-roll: attempt 1 is past `times`, so it is clean.
        point.directive(1, "thread").apply()

    def test_worker_crash_inert_on_inline(self):
        plan = FaultPlan(scripted=(ScriptedFault("worker_crash", times=10),))
        FaultPoint(plan, (0, 0)).directive(0, "inline").apply()

    def test_executing_installs_plan_thread_locally(self):
        plan = FaultPlan(seed=5)
        directive = FaultPoint(plan, (0, 0)).directive(0, "inline")
        assert active_plan() is None
        with executing(directive):
            assert active_plan() is plan
        assert active_plan() is None

    def test_faults_are_counted(self):
        plan = FaultPlan(
            slow_seconds=0.0,
            scripted=(ScriptedFault("slow_sweep", times=1),),
        )
        before = stats.snapshot()["faults_injected"]
        FaultPoint(plan, (0, 0)).directive(0, "inline").apply()
        assert stats.snapshot()["faults_injected"] == before + 1


class TestSpecParsing:
    def test_rates_and_knobs(self):
        plan = plan_from_spec(
            "worker_crash=0.2,batch_error=0.1,seed=7,hang=0.5,slow=0.01,stall=2048"
        )
        assert plan.seed == 7
        assert plan.rates == {"worker_crash": 0.2, "batch_error": 0.1}
        assert plan.hang_seconds == 0.5
        assert plan.slow_seconds == 0.01
        assert plan.stall_cycles == 2048

    def test_empty_spec_is_no_plan(self):
        assert plan_from_spec("") is None
        assert plan_from_spec("   ") is None

    def test_bad_key_and_value_rejected(self):
        with pytest.raises(ValueError, match="unknown REPRO_FAULTS key"):
            plan_from_spec("volcano=0.5")
        with pytest.raises(ValueError, match="bad REPRO_FAULTS value"):
            plan_from_spec("worker_crash=often")

    def test_unknown_key_error_lists_every_site_and_the_token(self):
        with pytest.raises(ValueError) as excinfo:
            plan_from_spec("worker_crash=0.2,volcano=0.5")
        message = str(excinfo.value)
        for site in SITES:
            assert site in message
        assert "'volcano'" in message
        assert "'volcano=0.5'" in message  # the offending token verbatim
        assert "seed, hang, slow, stall" in message

    def test_bad_value_error_lists_every_site_and_the_token(self):
        with pytest.raises(ValueError) as excinfo:
            plan_from_spec("batch_error=lots")
        message = str(excinfo.value)
        for site in SITES:
            assert site in message
        assert "'lots'" in message
        assert "'batch_error=lots'" in message

    def test_env_seeds_the_process_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "key_error=0.25,seed=11")
        set_fault_plan(None)  # force a re-read of the environment
        plan = active_plan()
        assert plan is not None
        assert plan.seed == 11 and plan.rates == {"key_error": 0.25}

    def test_sites_cover_every_documented_site(self):
        assert set(SITES) == {
            "worker_crash",
            "worker_hang",
            "batch_error",
            "slow_sweep",
            "core_stall",
            "key_error",
        }


class TestScoping:
    def test_injected_faults_restores_prior_state(self):
        plan = FaultPlan(seed=9)
        assert active_plan() is None
        with injected_faults(plan) as installed:
            assert installed is plan and active_plan() is plan
        assert active_plan() is None

    def test_set_fault_plan_returns_previous(self):
        plan = FaultPlan(seed=4)
        assert set_fault_plan(plan) is None
        assert set_fault_plan(None) is plan
