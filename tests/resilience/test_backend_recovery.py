"""Backend self-healing: retries, watchdogs, chain degradation.

Worker-level faults are injected two ways: directly (stateful callables
raising :class:`BackendError` subclasses — the thread backend shares
the caller's address space) and through the production
:class:`FaultDirective` path, which is the only way to reach real
process-pool workers (an injected crash there hard-exits the child and
produces a genuine ``BrokenProcessPool`` mid-batch).
"""

from __future__ import annotations

import pytest

from repro.crypto.fast.batch import seal_open_many
from repro.crypto.fast.exec import (
    InlineBackend,
    ProcessPoolBackend,
    ResiliencePolicy,
    ThreadPoolBackend,
)
from repro.errors import BatchTimeoutError, WorkerCrashError
from repro.resilience import FaultPlan, ScriptedFault, set_fault_plan, stats

#: No-backoff budget so the retry tests don't sleep.
FAST = ResiliencePolicy(max_retries=2, backoff_base=0.0, backoff_cap=0.0)

KEY = bytes(range(16))


def _packets(count, size=512):
    return [
        ((i + 1).to_bytes(13, "big"), bytes([i & 0xFF]) * size)
        for i in range(count)
    ]


class _FlakyCall:
    """Raises *error* for the first *failures* invocations, then returns."""

    def __init__(self, failures, error=WorkerCrashError("transient")):
        self.failures = failures
        self.calls = 0
        self.error = error

    def __call__(self, value):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return value * 2


class TestRetry:
    def test_transient_failure_heals_on_retry(self):
        backend = ThreadPoolBackend(2)
        try:
            flaky = _FlakyCall(failures=1)
            results = backend.run([(flaky, (21,)), (int, ("7",))], policy=FAST)
            assert results == [42, 7]
            assert flaky.calls == 2
            assert stats.snapshot()["retries"] >= 1
            assert backend.degradations == []
        finally:
            backend.close()

    def test_exhausted_retries_raise_when_degrade_disabled(self):
        backend = ThreadPoolBackend(2)
        policy = ResiliencePolicy(
            max_retries=1, backoff_base=0.0, backoff_cap=0.0, degrade=False
        )
        try:
            with pytest.raises(WorkerCrashError):
                backend.run([(_FlakyCall(failures=99), (1,))], policy=policy)
        finally:
            backend.close()

    def test_non_retryable_errors_propagate_immediately(self):
        backend = ThreadPoolBackend(2)

        def bad(_):
            raise ValueError("a crypto bug, not infrastructure")

        try:
            with pytest.raises(ValueError, match="crypto bug"):
                backend.run([(bad, (0,)), (int, ("1",))], policy=FAST)
            assert stats.snapshot()["retries"] == 0
        finally:
            backend.close()

    def test_backoff_schedule_is_capped_exponential(self):
        policy = ResiliencePolicy(backoff_base=0.01, backoff_cap=0.05)
        assert [policy.backoff(a) for a in range(5)] == [
            0.01,
            0.02,
            0.04,
            0.05,
            0.05,
        ]


class TestWatchdog:
    def test_hung_span_trips_watchdog_and_degrades(self):
        plan = FaultPlan(
            hang_seconds=0.25,
            scripted=(ScriptedFault("worker_hang", times=10**9),),
        )
        backend = ThreadPoolBackend(2)
        backend.resilience = ResiliencePolicy(
            max_retries=1,
            backoff_base=0.0,
            backoff_cap=0.0,
            watchdog_seconds=0.05,
        )
        set_fault_plan(plan)
        try:
            sealed, opened = seal_open_many(
                "gcm", KEY, _packets(16), [], 16, backend=backend
            )
        finally:
            set_fault_plan(None)
            backend.close()
        # The hang outruns the watchdog on every pooled attempt, so the
        # span can only finish by degrading to inline (which has no
        # watchdog and simply absorbs the final injected sleep).
        assert stats.snapshot()["watchdog_fires"] >= 1
        assert backend.degradations and "thread -> inline" in backend.degradations[0]
        assert sealed == seal_open_many("gcm", KEY, _packets(16), [], 16)[0]

    def test_watchdog_error_is_retryable(self):
        # BatchTimeoutError is a BackendError: the machinery retries a
        # watchdogged span rather than failing the dispatch.
        from repro.errors import BackendError

        assert issubclass(BatchTimeoutError, BackendError)


class TestDegradationChain:
    def test_thread_falls_back_to_inline(self):
        backend = ThreadPoolBackend(2)
        try:
            fallback = backend.fallback()
            assert isinstance(fallback, InlineBackend)
        finally:
            backend.close()

    def test_process_falls_back_to_thread_then_inline(self):
        backend = ProcessPoolBackend(2)
        try:
            fallback = backend.fallback()
            assert isinstance(fallback, ThreadPoolBackend)
            assert isinstance(fallback.fallback(), InlineBackend)
        finally:
            backend.close()

    def test_crash_storm_degrades_thread_to_inline(self):
        plan = FaultPlan(scripted=(ScriptedFault("worker_crash", times=10**9),))
        backend = ThreadPoolBackend(2)
        backend.resilience = FAST
        set_fault_plan(plan)
        try:
            sealed, _ = seal_open_many(
                "ccm", KEY, _packets(16), [], 8, backend=backend
            )
        finally:
            set_fault_plan(None)
            backend.close()
        assert backend.degradations
        assert backend.degradations[0].startswith("thread -> inline:")
        assert sealed == seal_open_many("ccm", KEY, _packets(16), [], 8)[0]

    def test_degradation_is_sticky_until_reset(self):
        backend = ThreadPoolBackend(2)
        backend.resilience = FAST
        plan = FaultPlan(scripted=(ScriptedFault("worker_crash", times=10**9),))
        set_fault_plan(plan)
        try:
            seal_open_many("gcm", KEY, _packets(16), [], 16, backend=backend)
        finally:
            set_fault_plan(None)
        try:
            assert len(backend.degradations) == 1
            # A fault-free dispatch afterwards stays on the fallback:
            # no new degradations, results still correct.
            sealed, _ = seal_open_many(
                "gcm", KEY, _packets(16), [], 16, backend=backend
            )
            assert len(backend.degradations) == 1
            assert sealed == seal_open_many("gcm", KEY, _packets(16), [], 16)[0]
            backend.reset_degradation()
            assert backend.degradations == []
        finally:
            backend.close()


class TestProcessPool:
    def test_injected_crash_breaks_pool_mid_batch_and_heals(self):
        """A real child hard-exit mid-batch: BrokenProcessPool -> retry."""
        backend = ProcessPoolBackend(2)
        backend.resilience = FAST
        if backend.workers <= 1:
            backend.close()
            pytest.skip("no process workers available on this host")
        # Crash only on attempt 0: the retry (attempt 1) re-rolls clean,
        # so a *fresh pool* completes the batch — no degradation needed.
        plan = FaultPlan(scripted=(ScriptedFault("worker_crash", times=1),))
        set_fault_plan(plan)
        try:
            sealed, opened = seal_open_many(
                "gcm", KEY, _packets(16), [], 16, backend=backend
            )
        finally:
            set_fault_plan(None)
            backend.close()
        assert stats.snapshot()["retries"] >= 1
        assert backend.degradations == []
        assert sealed == seal_open_many("gcm", KEY, _packets(16), [], 16)[0]

    def test_persistent_crash_storm_walks_the_whole_chain(self):
        backend = ProcessPoolBackend(2)
        backend.resilience = FAST
        if backend.workers <= 1:
            backend.close()
            pytest.skip("no process workers available on this host")
        plan = FaultPlan(scripted=(ScriptedFault("worker_crash", times=10**9),))
        set_fault_plan(plan)
        try:
            sealed, _ = seal_open_many(
                "gcm", KEY, _packets(16), [], 16, backend=backend
            )
        finally:
            set_fault_plan(None)
            backend.close()
        assert [r.split(":")[0] for r in backend.degradations] == [
            "process -> thread"
        ]
        fallback = backend.fallback()
        assert [r.split(":")[0] for r in fallback.degradations] == [
            "thread -> inline"
        ]
        assert sealed == seal_open_many("gcm", KEY, _packets(16), [], 16)[0]


class TestStructuralDegradation:
    """Every recorded ``degraded_reason`` for the process backend."""

    def test_daemonic_host_degrades_with_reason(self, monkeypatch):
        import multiprocessing

        class _Daemon:
            daemon = True

        monkeypatch.setattr(multiprocessing, "current_process", _Daemon)
        backend = ProcessPoolBackend(4)
        try:
            assert backend._ensure_pool() is None
            assert backend.degraded_reason == (
                "daemonic process cannot spawn workers"
            )
            assert backend.workers == 1
            # Inline execution still yields correct bytes.
            sealed, _ = seal_open_many(
                "gcm", KEY, _packets(8), [], 16, backend=backend
            )
            assert sealed == seal_open_many("gcm", KEY, _packets(8), [], 16)[0]
        finally:
            backend.close()

    def test_pool_creation_failure_degrades_with_reason(self, monkeypatch):
        import concurrent.futures

        def _no_pool(*args, **kwargs):
            raise OSError("fork: resource temporarily unavailable")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", _no_pool)
        backend = ProcessPoolBackend(4)
        try:
            assert backend._ensure_pool() is None
            assert backend.degraded_reason.startswith("process pool unavailable:")
            assert backend.workers == 1
            sealed, _ = seal_open_many(
                "ccm", KEY, _packets(8), [], 8, backend=backend
            )
            assert sealed == seal_open_many("ccm", KEY, _packets(8), [], 8)[0]
        finally:
            backend.close()

    def test_reset_degradation_keeps_structural_reason(self):
        backend = ProcessPoolBackend(2)
        try:
            backend.degraded_reason = "marked for test"
            backend.degradations.append("process -> thread: synthetic")
            backend.reset_degradation()
            assert backend.degradations == []
            assert backend.degraded_reason == "marked for test"
        finally:
            backend.close()
