"""Smoke test for the standalone bench runner.

Keeps ``benchmarks/run_bench.py`` importable and its JSON schema stable
so every PR can regenerate the perf trajectory without surprises.  The
quick mode spends ~20 ms per kernel, so this stays test-suite cheap.
"""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_run_bench():
    spec = importlib.util.spec_from_file_location(
        "run_bench", REPO_ROOT / "benchmarks" / "run_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_run_bench_quick_emits_snapshot(tmp_path):
    run_bench = _load_run_bench()
    out_path = run_bench.main(["--quick", "--out", str(tmp_path)])
    assert out_path.exists()
    snapshot = json.loads(out_path.read_text())
    assert snapshot["benchmarks"], "no benchmarks recorded"
    for name, entry in snapshot["benchmarks"].items():
        assert entry["ops_per_s"] > 0, name
        assert entry["iterations"] >= 1, name
    # Every *_fast kernel has a paired *_reference and a derived
    # speedup; batch kernels derive per-packet ratios vs the
    # sequential fast kernel, backend-parametrized batch kernels
    # derive pooled-over-inline ratios, and pipelined dataplane
    # kernels derive packets/s ratios vs their synchronous backend
    # twin (only the thread twin exists; pipelined_process has none).
    assert set(snapshot["speedups"]) == {
        "aes_block",
        "gf128_mul",
        "ghash_2kb",
        "aes_ctr_2kb",
        "gcm_2kb",
        "ccm_2kb",
        "gcm_2kb_batch32_per_packet",
        "ccm_2kb_batch32_per_packet",
        "radio_ccm_2kb_batch32_per_packet",
        "gcm_2kb_batch32_thread_over_inline",
        "ccm_2kb_batch32_thread_over_inline",
        "ccm_2kb_batch32_process_over_inline",
        "gcm_2kb_batch32_arena_over_inline",
        "ccm_2kb_batch32_arena_over_inline",
        "radio_ccm_2kb_batch32_thread_over_inline",
        "radio_ccm_2kb_batch32_arena_over_inline",
        "radio_ccm_2kb_batch32_pipelined_thread_over_sync",
    }
    assert all(ratio > 0 for ratio in snapshot["speedups"].values())
    # Backend context rides along for cross-machine honesty.
    assert snapshot["backend"] in ("inline", "thread", "process")
    assert snapshot["cpu_count"] >= 1
    assert set(snapshot["backend_workers"]) == {"thread", "process"}
    # Arena dataplane status rides along too: a recorded baseline must
    # say whether the process numbers came from the shared-memory arena
    # or the pickling fallback (and why, when degraded).
    assert snapshot["arena_active"] in (True, False)
    assert snapshot["arena_degraded"] is None or isinstance(
        snapshot["arena_degraded"], str
    )


def test_deterministic_bytes_is_stable_and_not_constant():
    # Regression: a fresh Random(seed) per byte once collapsed every
    # bench input to one repeated value (2 KB of 0x79), which both
    # misrepresents traffic and runs ~2x slower through numpy gathers.
    from repro.experiments.kernels import deterministic_bytes

    data = deterministic_bytes(2048, 12)
    assert data == deterministic_bytes(2048, 12)
    assert len(set(data)) > 100
    assert deterministic_bytes(2048, 13) != data
