"""`Simulator.cancel` interacting with the `Delay` fast path.

PR 1 gave the process stepper a fast path that pushes Delay wake-ups
straight onto the heap (bypassing ``call_at``) and made ``cancel`` a
lazy tombstone.  These tests pin the invariants the two features must
jointly hold: the pending counter stays exact, cancelled entries never
fire even when interleaved with fast-path wake-ups, and cancellation
observed from *inside* running processes behaves.
"""

from repro.sim.kernel import Delay, Simulator


def test_cancel_between_delay_fast_path_entries():
    """A cancelled callback scheduled between Delay wake-ups never runs."""
    sim = Simulator()
    log = []

    def ticker():
        for _ in range(5):
            yield Delay(2)
            log.append(("tick", sim.now))

    sim.add_process(ticker())
    entry = sim.call_at(5, lambda _: log.append(("cancelled!", sim.now)))
    assert sim.cancel(entry) is True
    sim.run()
    assert log == [("tick", t) for t in (2, 4, 6, 8, 10)]
    assert sim.pending_events == 0


def test_pending_counter_with_fast_path_and_cancel():
    """The O(1) counter tracks fast-path pushes and lazy cancels."""
    sim = Simulator()

    def sleeper():
        yield Delay(10)

    sim.add_process(sleeper())  # call_soon for the first step
    assert sim.pending_events == 1
    doomed = [sim.call_at(3, lambda _: None) for _ in range(4)]
    assert sim.pending_events == 5
    for entry in doomed:
        assert sim.cancel(entry)
    assert sim.pending_events == 1
    # Second cancel is a no-op and must not double-decrement.
    assert not sim.cancel(doomed[0])
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0
    assert sim.now == 10  # the Delay fast-path entry still fired


def test_cancel_from_inside_a_process():
    """A process can cancel a pending callback racing its own Delay."""
    sim = Simulator()
    fired = []
    entry = sim.call_at(7, lambda _: fired.append(sim.now))

    def canceller():
        yield Delay(5)
        assert sim.cancel(entry)
        yield Delay(10)

    sim.add_process(canceller())
    sim.run()
    assert fired == []
    assert sim.now == 15
    assert sim.pending_events == 0


def test_cancel_consumed_fast_path_entry_is_noop():
    """Entries consumed by the run loop can't be cancelled after the fact."""
    sim = Simulator()
    entry = sim.call_at(1, lambda _: None)

    def proc():
        yield Delay(3)

    sim.add_process(proc())
    sim.run()
    assert entry.consumed
    assert sim.cancel(entry) is False
    assert sim.pending_events == 0


def test_cancelled_timeout_never_triggers_event():
    """Cancelling a timeout's entry silences the event, queue drains."""
    sim = Simulator()
    seen = []
    entry = sim.call_later(4, lambda _: seen.append("timeout"))

    def waiter():
        yield Delay(2)
        sim.cancel(entry)
        yield Delay(6)
        seen.append("done")

    sim.add_process(waiter())
    sim.run()
    assert seen == ["done"]


def test_run_until_with_cancelled_head_entry():
    """`run(until=...)` skips a cancelled entry sitting at the heap head."""
    sim = Simulator()
    log = []
    head = sim.call_at(1, lambda _: log.append("head"))

    def proc():
        yield Delay(2)
        log.append("delay")

    sim.add_process(proc())
    sim.cancel(head)
    sim.run(until=5)
    assert log == ["delay"]
    assert sim.now == 5
