"""FIFO: capacity, ordering, purge, events, hooks (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import FifoError
from repro.sim.fifo import WordFifo
from repro.sim.kernel import Simulator


def make(depth=8):
    return WordFifo(Simulator(), depth_words=depth, name="t")


def test_fifo_order_preserved():
    f = make()
    for i in range(5):
        f.push_word(i)
    assert [f.pop_word() for _ in range(5)] == list(range(5))


def test_overflow_underflow():
    f = make(depth=2)
    f.push_word(1)
    f.push_word(2)
    with pytest.raises(FifoError):
        f.push_word(3)
    f.pop_word()
    f.pop_word()
    with pytest.raises(FifoError):
        f.pop_word()


def test_word_range_checked():
    f = make()
    with pytest.raises(FifoError):
        f.push_word(1 << 32)


def test_block_roundtrip(rb):
    f = make(depth=8)
    block = rb(16)
    f.push_block(block)
    assert f.blocks_available == 1
    assert f.pop_block() == block


def test_block_size_checked(rb):
    f = make()
    with pytest.raises(FifoError):
        f.push_block(rb(15))


def test_purge_clears_and_counts(rb):
    f = make()
    f.push_block(rb(16))
    dropped = f.purge()
    assert dropped == 4
    assert len(f) == 0
    assert f.purge_count == 1


def test_statistics(rb):
    f = make(depth=8)
    f.push_block(rb(16))
    f.pop_block()
    assert f.total_pushed == 4
    assert f.total_popped == 4
    assert f.high_watermark == 4


def test_wait_events():
    sim = Simulator()
    f = WordFifo(sim, 4, "w")
    ev = f.wait_not_empty()
    assert not ev.triggered
    f.push_word(1)
    assert ev.triggered
    # Fill, then wait for space.
    for i in range(3):
        f.push_word(i)
    full_ev = f.wait_not_full()
    assert not full_ev.triggered
    f.pop_word()
    assert full_ev.triggered


def test_push_pop_hooks_fire_once():
    f = make()
    hits = []
    f.add_push_hook(lambda: hits.append("push"))
    f.push_word(1)
    f.push_word(2)
    assert hits == ["push"]
    f.add_pop_hook(lambda: hits.append("pop"))
    f.pop_word()
    f.pop_word()
    assert hits == ["push", "pop"]


@given(st.lists(st.integers(0, 0xFFFFFFFF), max_size=40))
@settings(max_examples=30, deadline=None)
def test_fifo_invariant_random_traffic(words):
    """Pushed == popped + resident, order preserved, never negative."""
    f = WordFifo(Simulator(), depth_words=16)
    popped = []
    for w in words:
        if f.can_push():
            f.push_word(w)
        if len(f) > 8 and f.can_pop():
            popped.append(f.pop_word())
    popped += [f.pop_word() for _ in range(len(f))]
    pushed_count = f.total_pushed
    assert len(popped) == pushed_count
    # Order: popped must be a prefix-order subsequence of pushed words.
    expected = [w for w in words][:pushed_count]
    assert popped == expected[: len(popped)]
