"""Signals and pulse wires (done-latch semantics)."""

from repro.sim.kernel import Simulator
from repro.sim.signals import PulseWire, Signal
from repro.sim.tracing import TraceRecorder


def test_signal_levels_and_history():
    sim = Simulator()
    s = Signal(sim, "s", initial=0)
    s.set(1)
    s.set(1)  # no duplicate history entry
    s.set(2)
    assert s.value == 2
    assert [v for _, v in s.history] == [0, 1, 2]


def test_signal_wait_for_current_and_future():
    sim = Simulator()
    s = Signal(sim, "s", initial=0)
    now_ev = s.wait_for(0)
    assert now_ev.triggered
    later = s.wait_for(3)
    assert not later.triggered
    s.set(3)
    assert later.triggered


def test_pulse_wire_wakes_waiter():
    sim = Simulator()
    p = PulseWire(sim, "p")
    ev = p.wait()
    assert not ev.triggered
    p.pulse("v")
    sim.run()
    assert ev.triggered and ev.value == "v"


def test_pulse_latch_consumed_once():
    sim = Simulator()
    p = PulseWire(sim, "p")
    p.pulse(1)
    first = p.wait()
    assert first.triggered and first.value == 1
    second = p.wait()
    assert not second.triggered  # latch consumed


def test_pulse_latch_is_boolean_not_counter():
    sim = Simulator()
    p = PulseWire(sim, "p")
    p.pulse()
    p.pulse()
    assert p.pulse_count == 2
    assert p.wait().triggered
    assert not p.wait().triggered


def test_clear_latch():
    sim = Simulator()
    p = PulseWire(sim, "p")
    p.pulse()
    p.clear_latch()
    assert not p.wait().triggered


def test_trace_recorder_filters_and_periods():
    t = TraceRecorder(enabled=True)
    for c in (10, 59, 108):
        t.record(c, "cu", "issue", op="SAES")
    t.record(20, "cu", "complete")
    assert len(t) == 4
    assert t.cycles_of("cu", "issue") == [10, 59, 108]
    assert t.periods("cu", "issue") == [49, 49]
    assert len(t.filter(kind="complete")) == 1
    t.clear()
    assert len(t) == 0


def test_trace_disabled_records_nothing():
    t = TraceRecorder(enabled=False)
    t.record(1, "x", "y")
    assert len(t) == 0
