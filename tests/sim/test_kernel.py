"""Discrete-event kernel: ordering, processes, events, guards."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Delay, Simulator


def test_callbacks_run_in_time_order():
    sim = Simulator()
    log = []
    sim.call_at(10, lambda _: log.append(10))
    sim.call_at(5, lambda _: log.append(5))
    sim.call_at(5, lambda _: log.append("5b"))
    sim.run()
    assert log == [5, "5b", 10]
    assert sim.now == 10


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.call_at(10, lambda _: sim.call_at(3, lambda _2: None))
    with pytest.raises(SimulationError):
        sim.run()


def test_process_delay_and_return_value():
    sim = Simulator()

    def proc():
        yield Delay(7)
        yield Delay(3)
        return "done"

    p = sim.add_process(proc())
    sim.run()
    assert sim.now == 10
    assert p.finished
    assert p.done.value == "done"


def test_process_waits_event():
    sim = Simulator()
    ev = sim.event("e")
    log = []

    def waiter():
        value = yield ev
        log.append((sim.now, value))

    sim.add_process(waiter())
    sim.call_at(42, lambda _: ev.trigger("ping"))
    sim.run()
    assert log == [(42, "ping")]


def test_event_latches_for_late_waiters():
    sim = Simulator()
    ev = sim.event()
    ev.trigger(5)
    got = []

    def late():
        got.append((yield ev))

    sim.add_process(late())
    sim.run()
    assert got == [5]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.trigger()
    with pytest.raises(SimulationError):
        ev.trigger()


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Delay(-1)


def test_invalid_yield_rejected():
    sim = Simulator()

    def proc():
        yield 42

    sim.add_process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_limit():
    sim = Simulator()

    def forever():
        while True:
            yield Delay(10)

    sim.add_process(forever())
    sim.run(until=55)
    assert sim.now == 55


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    ev = sim.event("never")
    with pytest.raises(SimulationError):
        sim.run_until_event(ev)


def test_timeout_event():
    sim = Simulator()
    ev = sim.timeout(20, "late")
    value = sim.run_until_event(ev)
    assert value == "late"
    assert sim.now == 20


def test_pending_events_counter_tracks_push_pop():
    sim = Simulator()
    assert sim.pending_events == 0
    entries = [sim.call_at(t, lambda _: None) for t in (1, 2, 3, 4)]
    assert sim.pending_events == 4
    sim.run(until=2)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0
    assert all(e.cancelled is False for e in entries)


def test_cancel_is_lazy_and_counted():
    sim = Simulator()
    log = []
    keep = sim.call_at(5, lambda _: log.append("keep"))
    drop = sim.call_at(3, lambda _: log.append("drop"))
    assert sim.pending_events == 2
    assert sim.cancel(drop) is True
    assert sim.cancel(drop) is False  # idempotent
    assert sim.pending_events == 1
    sim.run()
    assert log == ["keep"]
    assert sim.pending_events == 0
    assert keep.cancelled is False


def test_cancel_after_execution_is_a_noop():
    sim = Simulator()
    entry = sim.call_at(1, lambda _: None)
    sim.run()
    assert sim.pending_events == 0
    # Cancelling an already-executed entry must not drive the counter
    # negative (it was popped, not queued).
    assert sim.cancel(entry) is False
    assert sim.pending_events == 0


def test_cancelled_entry_skipped_in_run_until_event():
    sim = Simulator()
    ev = sim.event("target")
    doomed = sim.call_at(1, lambda _: ev.trigger("wrong"))
    sim.cancel(doomed)
    sim.call_at(2, lambda _: ev.trigger("right"))
    assert sim.run_until_event(ev) == "right"
    assert sim.pending_events == 0


def test_delay_validation_and_equality():
    assert Delay(3) == Delay(3)
    assert Delay(3) != Delay(4)
    assert hash(Delay(3)) == hash(Delay(3))


def test_delay_is_immutable():
    d = Delay(3)
    with pytest.raises(AttributeError):
        d.cycles = -10
    assert d.cycles == 3


def test_delta_cycle_yield_none():
    sim = Simulator()
    order = []

    def a():
        order.append("a1")
        yield None
        order.append("a2")

    def b():
        order.append("b1")
        yield None
        order.append("b2")

    sim.add_process(a())
    sim.add_process(b())
    sim.run()
    assert order == ["a1", "b1", "a2", "b2"]
