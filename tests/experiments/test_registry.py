"""Registry resolution, grid expansion and seed derivation."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import Scenario, case_seed, get, names, resolve
from repro.experiments.scenario import REGISTRY, register

EXPECTED_BUILTINS = {
    "table2_throughput",
    "table3_comparison",
    "table4_reconfig",
    "scheduling_policies",
    "core_scaling",
    "ablation_mapping",
    "mixed_channel_radio",
    "mode_mix",
    "key_churn",
    "reconfig_under_load",
    "bench_kernels",
    "batch_aead",
    "radio_batch",
    "backend_sweep",
}


def test_builtin_scenarios_registered():
    assert EXPECTED_BUILTINS <= set(names())


def test_get_unknown_scenario_raises():
    with pytest.raises(ExperimentError, match="unknown scenario"):
        get("definitely_not_registered")


def test_resolve_all_and_comma_lists():
    everything = resolve("all")
    assert [s.name for s in everything] == sorted(names())
    pair = resolve("core_scaling,mode_mix")
    assert [s.name for s in pair] == ["core_scaling", "mode_mix"]
    # Duplicates collapse to first occurrence; order follows the spec.
    tripled = resolve(["mode_mix", "core_scaling,mode_mix"])
    assert [s.name for s in tripled] == ["mode_mix", "core_scaling"]
    with pytest.raises(ExperimentError, match="empty scenario spec"):
        resolve([])


def test_grid_expansion_order_and_quick_grid():
    scenario = get("table2_throughput")
    cases = list(scenario.cases(quick=False))
    assert len(cases) == scenario.case_count(quick=False) == 9
    # Cartesian product in declaration order: config varies slowest.
    assert cases[0] == {"config": "gcm_1", "key_bits": 128}
    assert cases[1] == {"config": "gcm_1", "key_bits": 192}
    quick_cases = list(scenario.cases(quick=True))
    assert quick_cases == [
        {"config": "gcm_1", "key_bits": 128},
        {"config": "ccm_1", "key_bits": 128},
    ]


def test_empty_grid_is_one_parameterless_case():
    scenario = get("table3_comparison")
    assert list(scenario.cases()) == [{}]
    assert scenario.case_count() == 1


def test_case_seed_is_deterministic_and_spread():
    a = case_seed(0, "core_scaling", 0)
    assert a == case_seed(0, "core_scaling", 0)
    distinct = {
        case_seed(base, name, index)
        for base in (0, 1)
        for name in ("core_scaling", "mode_mix")
        for index in (0, 1, 2)
    }
    assert len(distinct) == 12
    assert all(seed >= 0 for seed in distinct)


def test_double_registration_rejected():
    @register(name="_test_dup_probe", grid={})
    def probe(params, seed, quick):
        return {"ok": True}

    try:
        with pytest.raises(ExperimentError, match="registered twice"):
            register(name="_test_dup_probe")(probe)
    finally:
        del REGISTRY["_test_dup_probe"]


def test_kernel_names_schema_matches_build_kernels():
    # KERNEL_NAMES is a literal (importing it must stay cheap); pin it
    # to what build_kernels() actually constructs.
    from repro.experiments.kernels import KERNEL_NAMES, build_kernels

    assert KERNEL_NAMES == tuple(build_kernels())


def test_timing_metric_suffix_matching():
    scenario = Scenario(
        name="x", fn=lambda p, s, q: {}, timing_metrics=("ops_per_s",)
    )
    assert scenario.is_timing_metric("ops_per_s")
    assert scenario.is_timing_metric("encrypt_ops_per_s")
    assert not scenario.is_timing_metric("cycles")
