"""Sweep runner and artifact/compare semantics.

The load-bearing guarantees:

- serial and parallel runs of the same seeded sweep produce identical
  deterministic metrics (the acceptance criterion of ISSUE 2);
- the JSON/CSV artifacts round-trip;
- compare fails on deterministic/correctness regressions, warns on
  timing drift, and understands the legacy ``BENCH_*.json`` schema.
"""

import copy
import csv

import pytest

from repro.errors import ExperimentError
from repro.experiments import compare, load_artifact, run_sweep, write_artifact
from repro.experiments.runner import build_units, execute_unit
from repro.experiments.scenario import resolve

#: Cheap deterministic scenarios used throughout (quick grids).
SPEC = ["core_scaling", "mode_mix"]


@pytest.fixture(scope="module")
def serial_artifact():
    return run_sweep(SPEC, quick=True, parallel=1, base_seed=7)


def _deterministic_view(artifact):
    """Scenario cases with timing metrics stripped."""
    view = {}
    for name, block in artifact["scenarios"].items():
        timing = tuple(block["timing_metrics"])
        view[name] = [
            {
                "params": case["params"],
                "seed": case["seed"],
                "metrics": {
                    k: v
                    for k, v in case["metrics"].items()
                    if not any(k == t or k.endswith(t) for t in timing)
                },
            }
            for case in block["cases"]
        ]
    return view


def test_serial_run_is_reproducible(serial_artifact):
    again = run_sweep(SPEC, quick=True, parallel=1, base_seed=7)
    assert _deterministic_view(again) == _deterministic_view(serial_artifact)


def test_parallel_equals_serial(serial_artifact):
    parallel = run_sweep(SPEC, quick=True, parallel=3, base_seed=7)
    assert _deterministic_view(parallel) == _deterministic_view(serial_artifact)


def test_different_base_seed_changes_seeds(serial_artifact):
    other = run_sweep(["mode_mix"], quick=True, parallel=1, base_seed=8)
    ours = serial_artifact["scenarios"]["mode_mix"]["cases"]
    theirs = other["scenarios"]["mode_mix"]["cases"]
    assert [c["seed"] for c in ours] != [c["seed"] for c in theirs]


def test_execute_unit_rejects_bad_metrics():
    units = build_units(resolve("core_scaling"), quick=True, base_seed=0)
    name, index, metrics = execute_unit(units[0])
    assert name == "core_scaling" and index == 0 and metrics["packets_done"] > 0
    with pytest.raises(ExperimentError, match="unknown scenario"):
        execute_unit(("nope", 0, {}, 0, True))


def test_artifact_roundtrip_json_and_csv(tmp_path, serial_artifact):
    json_path, csv_path = write_artifact(serial_artifact, tmp_path, stem="T")
    assert json_path.name == "T.json" and csv_path.name == "T.csv"
    assert load_artifact(json_path) == serial_artifact
    with csv_path.open() as handle:
        rows = list(csv.DictReader(handle))
    expected = sum(
        len(case["metrics"])
        for block in serial_artifact["scenarios"].values()
        for case in block["cases"]
    )
    assert len(rows) == expected
    assert {row["scenario"] for row in rows} == set(SPEC)


def test_compare_run_against_itself_passes(serial_artifact):
    report = compare(serial_artifact, copy.deepcopy(serial_artifact))
    assert report.ok and report.exit_code() == 0
    assert report.checked > 0
    assert not report.warnings


def test_compare_fails_on_deterministic_drift(serial_artifact):
    baseline = copy.deepcopy(serial_artifact)
    case = baseline["scenarios"]["core_scaling"]["cases"][0]
    case["metrics"]["packets_done"] += 1
    report = compare(serial_artifact, baseline)
    assert not report.ok and report.exit_code() == 1
    assert any("packets_done" in failure for failure in report.failures)


def test_compare_fails_on_digest_mismatch(serial_artifact):
    baseline = copy.deepcopy(serial_artifact)
    case = baseline["scenarios"]["mode_mix"]["cases"][0]
    case["metrics"]["output_digest"] = "0" * 32
    report = compare(serial_artifact, baseline)
    assert any("output_digest" in failure for failure in report.failures)


def test_compare_missing_scenario_fails(serial_artifact):
    run = copy.deepcopy(serial_artifact)
    del run["scenarios"]["mode_mix"]
    report = compare(run, serial_artifact)
    assert any("mode_mix" in failure for failure in report.failures)


def test_compare_missing_case_only_warns(serial_artifact):
    run = copy.deepcopy(serial_artifact)
    del run["scenarios"]["core_scaling"]["cases"][0]
    report = compare(run, serial_artifact)
    assert report.ok
    assert any("not in run" in warning for warning in report.warnings)


@pytest.fixture(scope="module")
def bench_artifact():
    return run_sweep(["bench_kernels"], quick=True, parallel=1, base_seed=0)


def test_timing_drift_warns_not_fails(bench_artifact):
    baseline = copy.deepcopy(bench_artifact)
    for case in baseline["scenarios"]["bench_kernels"]["cases"]:
        case["metrics"]["ops_per_s"] *= 10
    report = compare(bench_artifact, baseline)
    assert report.ok, report.failures
    assert report.warnings
    strict = compare(bench_artifact, baseline, strict_perf=True)
    assert not strict.ok


def test_legacy_bench_baseline_schema(bench_artifact):
    legacy = {
        "benchmarks": {
            case["params"]["kernel"]: {"ops_per_s": case["metrics"]["ops_per_s"]}
            for case in bench_artifact["scenarios"]["bench_kernels"]["cases"]
        }
    }
    report = compare(bench_artifact, legacy)
    assert report.ok, report.failures

    # A correctness regression gates hard even when ops/s match.
    broken = copy.deepcopy(bench_artifact)
    broken["scenarios"]["bench_kernels"]["cases"][0]["metrics"]["correct"] = False
    report = compare(broken, legacy)
    assert any("correctness" in failure for failure in report.failures)

    # A kernel missing from the run is a coverage failure.
    legacy["benchmarks"]["brand_new_kernel"] = {"ops_per_s": 1.0}
    report = compare(bench_artifact, legacy)
    assert any("brand_new_kernel" in failure for failure in report.failures)


def test_legacy_baseline_requires_bench_scenario(serial_artifact):
    with pytest.raises(ExperimentError, match="bench_kernels"):
        compare(serial_artifact, {"benchmarks": {}})


def test_compare_rejects_unknown_schemas(serial_artifact):
    with pytest.raises(ExperimentError, match="neither"):
        compare(serial_artifact, {"something": 1})
    with pytest.raises(ExperimentError, match="missing 'scenarios'"):
        compare({"benchmarks": {}}, serial_artifact)


def test_cli_run_and_compare(tmp_path, capsys):
    from repro.experiments.__main__ import main

    out = tmp_path / "sweeps"
    assert (
        main(
            [
                "run",
                "table3_comparison",
                "--quick",
                "--out",
                str(out),
                "--stem",
                "CLI",
            ]
        )
        == 0
    )
    run_path = out / "CLI.json"
    assert run_path.exists() and (out / "CLI.csv").exists()
    assert main(["compare", str(run_path), str(run_path)]) == 0
    capsys.readouterr()
    assert main(["list"]) == 0
    assert "table3_comparison" in capsys.readouterr().out
    assert main(["run", "no_such_scenario", "--out", str(out)]) == 2
