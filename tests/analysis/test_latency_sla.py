"""Exact nearest-rank percentiles and the SLA spec built on them."""

from __future__ import annotations

import pytest

from repro.analysis.latency import (
    nearest_rank_percentile,
    nearest_rank_percentiles,
)
from repro.analysis.throughput import (
    CLOCK_HZ_DEFAULT,
    ClassSla,
    SlaSpec,
    WorkloadReport,
)


class TestNearestRankPercentile:
    def test_textbook_example(self):
        # The canonical nearest-rank worked example: 5 samples,
        # p30 -> rank ceil(0.3 * 5) = 2 -> second smallest.
        sample = [15, 20, 35, 40, 50]
        assert nearest_rank_percentile(sample, 0.30) == 20
        assert nearest_rank_percentile(sample, 0.40) == 20
        assert nearest_rank_percentile(sample, 0.50) == 35
        assert nearest_rank_percentile(sample, 1.00) == 50

    def test_always_returns_an_observed_value(self):
        sample = [3, 1, 4, 1, 5, 9, 2, 6]
        for q in (0.01, 0.25, 0.5, 0.75, 0.99, 0.999, 1.0):
            assert nearest_rank_percentile(sample, q) in sample

    def test_single_sample(self):
        assert nearest_rank_percentile([42], 0.5) == 42
        assert nearest_rank_percentile([42], 0.999) == 42

    def test_unsorted_input_is_sorted_internally(self):
        assert nearest_rank_percentile([9, 1, 5], 0.5) == 5

    def test_small_sample_p99_is_the_maximum(self):
        # With n < 100, ceil(0.99 * n) == n: p99 of a small sample is
        # its max — a real packet, not an interpolated average.
        sample = list(range(10))
        assert nearest_rank_percentile(sample, 0.99) == 9

    def test_empty_sample_is_zero(self):
        assert nearest_rank_percentile([], 0.99) == 0.0

    @pytest.mark.parametrize("q", [0.0, -0.1, 1.5])
    def test_fraction_out_of_range_rejected(self, q):
        with pytest.raises(ValueError, match="percentile fraction"):
            nearest_rank_percentile([1, 2], q)

    def test_batch_helper_matches_single_cuts(self):
        sample = [7, 3, 11, 2, 19, 5]
        cuts = nearest_rank_percentiles(sample, (0.5, 0.99, 0.999))
        for q, value in cuts.items():
            assert value == nearest_rank_percentile(sample, q)

    def test_batch_helper_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="percentile fraction"):
            nearest_rank_percentiles([1], (0.5, 0.0))


def _report(**kwargs):
    report = WorkloadReport(total_cycles=1000, packets_done=0, payload_bytes=0)
    for name, value in kwargs.items():
        setattr(report, name, value)
    return report


class TestWorkloadReportSla:
    def test_class_percentile_uses_nearest_rank(self):
        cycles = [100, 200, 300, 400]
        report = _report(per_class_latencies={0: cycles})
        expected = (
            nearest_rank_percentile(cycles, 0.99) / CLOCK_HZ_DEFAULT * 1e6
        )
        assert report.class_percentile_us(0, 0.99) == expected

    def test_drop_fraction_is_shed_over_offered(self):
        report = _report(
            per_class_latencies={2: [100] * 6},
            admitted_by_class={2: 6},
            shed_by_class={2: 2},
        )
        assert report.drop_fraction(2) == pytest.approx(0.25)

    def test_sla_passes_inside_budget(self):
        report = _report(per_class_latencies={0: [190] * 10})  # 1us each
        spec = SlaSpec(classes={0: ClassSla(p99_us=5.0, min_completed=5)})
        assert spec.violations(report) == []
        assert report.check_sla(spec) == []

    def test_latency_budget_violation_names_class_and_cut(self):
        # 190 000 cycles at 190MHz = 1000us, over a 10us p99 budget.
        report = _report(per_class_latencies={0: [190_000] * 4})
        spec = SlaSpec(classes={0: ClassSla(p99_us=10.0)})
        (violation,) = spec.violations(report)
        assert "control" in violation
        assert "p99" in violation
        assert "over budget" in violation

    def test_min_completed_blocks_vacuous_pass(self):
        report = _report()  # no samples at all
        spec = SlaSpec(classes={0: ClassSla(p99_us=10.0, min_completed=1)})
        (violation,) = spec.violations(report)
        assert "only 0 completed" in violation

    def test_drop_budget_violation(self):
        report = _report(
            per_class_latencies={2: [100]},
            admitted_by_class={2: 1},
            shed_by_class={2: 1},
        )
        spec = SlaSpec(classes={2: ClassSla(max_drop_fraction=0.1)})
        (violation,) = spec.violations(report)
        assert "drop fraction" in violation and "bulk" in violation

    def test_run_level_budgets(self):
        report = _report(auth_failures=2, dead_lettered=1)
        spec = SlaSpec(max_auth_failures=0, max_dead_lettered=0)
        violations = spec.violations(report)
        assert any("auth failures 2" in v for v in violations)
        assert any("dead-lettered 1" in v for v in violations)

    def test_shed_is_not_a_latency_or_auth_violation(self):
        # Shed traffic lives in its own budget: a report that shed
        # packets but completed its control traffic inside budget only
        # violates a drop-fraction cap, never the auth/dead-letter caps.
        report = _report(
            per_class_latencies={0: [190] * 4, 2: [190] * 4},
            admitted_by_class={0: 4, 2: 4},
            shed_by_class={2: 4},
        )
        spec = SlaSpec(
            classes={
                0: ClassSla(p99_us=5.0, max_drop_fraction=0.0),
                2: ClassSla(max_drop_fraction=0.25),
            },
            max_auth_failures=0,
            max_dead_lettered=0,
        )
        violations = spec.violations(report)
        (violation,) = violations
        assert "bulk: drop fraction" in violation

    def test_violations_ordered_most_important_class_first(self):
        report = _report(
            per_class_latencies={0: [190_000], 2: [190_000]},
        )
        spec = SlaSpec(
            classes={
                2: ClassSla(p99_us=1.0),
                0: ClassSla(p99_us=1.0),
            }
        )
        first, second = spec.violations(report)
        assert first.startswith("control")
        assert second.startswith("bulk")
