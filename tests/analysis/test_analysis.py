"""Analysis layer: loop equations, Table II theory, area, latency, tables."""

import math

import pytest

from repro.analysis.area import AreaModel, PAPER_TOTAL_BRAMS, PAPER_TOTAL_SLICES
from repro.analysis.cycles import LoopModel, paper_loop_cycles
from repro.analysis.latency import latency_stats
from repro.analysis.tables import render_table
from repro.analysis.throughput import (
    PAPER_TABLE2,
    mbps,
    theoretical_mbps,
    theoretical_table2,
)
from repro.baselines import LITERATURE_ENTRIES, MonoCoreAccelerator, PipelinedGcmEngine, mccp_entry
from repro.core.params import Algorithm


def test_loop_model_matches_paper_equations():
    model = LoopModel()
    for key_bits in (128, 192, 256):
        for mode in ("gcm", "ctr", "cbc", "ccm1", "ccm2"):
            assert model.period(mode, key_bits) == paper_loop_cycles(mode, key_bits)


def test_paper_anchor_values():
    assert paper_loop_cycles("gcm", 128) == 49
    assert paper_loop_cycles("ccm2", 128) == 55
    assert paper_loop_cycles("ccm1", 128) == 104
    assert paper_loop_cycles("ccm1", 256) == 136


def test_theoretical_table2_matches_paper_within_1pct():
    for (config, key_bits), (paper_theo, _) in PAPER_TABLE2.items():
        ours = theoretical_mbps(config, key_bits)
        assert ours == pytest.approx(paper_theo, rel=0.01), (config, key_bits)


def test_headline_1_7_gbps():
    assert theoretical_mbps("gcm_4x1", 128) == pytest.approx(1984, rel=0.01)
    assert theoretical_mbps("gcm_4x1", 128) > 1700


def test_table2_rows_complete():
    rows = theoretical_table2()
    assert len(rows) == 18
    assert all(math.isnan(r.packet_mbps) for r in rows)  # filled by the bench


def test_mbps_conversion():
    assert mbps(128, 49, 190e6) == pytest.approx(496.3, rel=0.01)
    with pytest.raises(ValueError):
        mbps(128, 0)


def test_area_model_hits_paper_totals():
    model = AreaModel(core_count=4)
    slices, brams = model.device_total()
    assert slices == PAPER_TOTAL_SLICES
    assert brams == PAPER_TOTAL_BRAMS
    inv = model.inventory()
    assert sum(r[2] for r in inv) == slices
    assert sum(r[3] for r in inv) == brams


def test_area_scales_with_cores():
    s4, _ = AreaModel(4).device_total()
    s2, _ = AreaModel(2).device_total()
    per_core = AreaModel(4).per_core()[0]
    assert s4 - s2 == pytest.approx(2 * per_core, abs=per_core // 4)


def test_latency_stats():
    stats = latency_stats([100, 200, 300, 400, 1000], clock_hz=100e6)
    assert stats.count == 5
    assert stats.mean_cycles == 400
    assert stats.max_cycles == 1000
    assert stats.p50_cycles == 300
    assert stats.max_us == pytest.approx(10.0)
    empty = latency_stats([])
    assert empty.count == 0 and empty.mean_us == 0


def test_render_table():
    out = render_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "333" in out and "|" in out


def test_mccp_entry_close_to_paper_normalised_throughput():
    gcm = mccp_entry(algorithm="GCM")
    ccm = mccp_entry(algorithm="CCM")
    # Theoretical normalisation sits slightly above the paper's
    # packet-overhead-inclusive 9.91 / 4.43.
    assert gcm.throughput_mbps_per_mhz == pytest.approx(10.45, rel=0.01)
    assert ccm.throughput_mbps_per_mhz == pytest.approx(4.92, rel=0.01)
    assert gcm.programmable


def test_literature_entries_ranking():
    # Lemsitzer's pipelined GCM dominates raw normalised throughput;
    # the MCCP dominates the programmable designs.
    lem = max(LITERATURE_ENTRIES, key=lambda e: e.throughput_mbps_per_mhz)
    assert lem.name.startswith("S. Lemsitzer")
    programmables = [e for e in LITERATURE_ENTRIES if e.programmable]
    assert all(
        mccp_entry().throughput_mbps_per_mhz > e.throughput_mbps_per_mhz
        for e in programmables
    )


def test_mono_core_quarter_of_mccp():
    mono = MonoCoreAccelerator()
    single = mono.throughput_mbps(Algorithm.GCM, 128)
    assert single == pytest.approx(437, rel=0.15)  # one core with overhead


def test_pipelined_engine_tradeoffs():
    engine = PipelinedGcmEngine()
    assert engine.gcm_throughput_mbps() > 2000      # wins raw GCM
    assert engine.ccm_throughput_mbps() < engine.gcm_throughput_mbps() / 5
    assert engine.mbps_per_mhz() > 30               # Table III's 32 Mbps/MHz
    ct, tag = PipelinedGcmEngine.encrypt(bytes(16), bytes(12), b"x")
    from repro.crypto import gcm_encrypt

    assert (ct, tag) == gcm_encrypt(bytes(16), bytes(12), b"x")
