"""Two-core CCM split: correctness, inter-core traffic, steady state."""

import pytest

from repro.core.crypto_core import CryptoCore
from repro.core.harness import drainer_process, feeder_process
from repro.core.params import Direction
from repro.crypto import ccm_encrypt
from repro.crypto.aes import expand_key
from repro.radio import format_ccm_two_core, parse_output
from repro.sim.kernel import Simulator
from repro.unit.timing import DEFAULT_TIMING
from repro.utils.bits import words32_to_bytes

KEY = bytes(range(16))


def run_pair(mac_task, ctr_task, key=KEY, drain=True):
    sim = Simulator()
    c0 = CryptoCore(sim, DEFAULT_TIMING, index=0)
    c1 = CryptoCore(sim, DEFAULT_TIMING, index=1)
    c0.unit.ic_out = c1.unit.ic_in
    c1.unit.ic_out = c0.unit.ic_in
    for core in (c0, c1):
        core.key_cache.install(expand_key(key), 8 * len(key))
    sim.add_process(feeder_process(c0, mac_task.input_blocks))
    sim.add_process(feeder_process(c1, ctr_task.input_blocks))
    sink = []
    if drain:
        sim.add_process(drainer_process(c1, sink))
    d0 = c0.assign_task(mac_task.params)
    d1 = c1.assign_task(ctr_task.params)
    r1 = sim.run_until_event(d1, limit=60_000_000)
    sim.run_until_event(d0, limit=60_000_000)
    sim.run(until=sim.now + 4000)
    while c1.out_fifo.can_pop():
        sink.append(c1.out_fifo.pop_word())
    blocks = [words32_to_bytes(sink[i : i + 4]) for i in range(0, len(sink) - 3, 4)]
    return r1, blocks, (c0, c1, sim)


@pytest.mark.parametrize("size,aad", [(32, 0), (100, 20), (2048, 16)], ids=str)
def test_two_core_encrypt_matches_gold(size, aad, rb):
    nonce, header, data = rb(13), rb(aad), rb(size)
    mac_task, ctr_task = format_ccm_two_core(
        128, nonce, header, data, Direction.ENCRYPT, 8
    )
    r1, blocks, _ = run_pair(mac_task, ctr_task)
    ct, tag = parse_output(ctr_task, blocks)
    assert (ct, tag) == ccm_encrypt(KEY, nonce, data, header, 8)


def test_two_core_decrypt_roundtrip_and_tamper(rb):
    nonce, header, data = rb(13), rb(12), rb(600)
    ct, tag = ccm_encrypt(KEY, nonce, data, header, 8)
    mac_task, ctr_task = format_ccm_two_core(
        128, nonce, header, ct, Direction.DECRYPT, 8, tag
    )
    r1, blocks, _ = run_pair(mac_task, ctr_task, drain=False)
    pt, _ = parse_output(ctr_task, blocks)
    assert r1.ok and pt == data

    mac_task, ctr_task = format_ccm_two_core(
        128, nonce, header, ct, Direction.DECRYPT, 8, bytes(8)
    )
    r1, blocks, _ = run_pair(mac_task, ctr_task, drain=False)
    assert r1.auth_failed and blocks == []


def test_intercore_transfer_counts(rb):
    nonce, data = rb(13), rb(320)  # 20 blocks
    mac_task, ctr_task = format_ccm_two_core(
        128, nonce, b"", data, Direction.DECRYPT, 8,
        ccm_encrypt(KEY, nonce, data, b"", 8)[1],
    )
    # decrypt: CTR forwards every pt block; MAC forwards the final MAC.
    ct, tag = ccm_encrypt(KEY, nonce, data, b"", 8)
    mac_task, ctr_task = format_ccm_two_core(
        128, nonce, b"", ct, Direction.DECRYPT, 8, tag
    )
    r1, _, (c0, c1, _) = run_pair(mac_task, ctr_task, drain=False)
    assert r1.ok
    assert c0.unit.ic_in.transfers == 20  # pt blocks into the MAC core
    assert c1.unit.ic_in.transfers == 1   # the MAC into the CTR core
