"""Firmware sources: builder idioms, structure, disassembly."""

import re

import pytest

from repro.core.firmware.builder import FW
from repro.core.firmware.cbc_mac import build_cbc_mac
from repro.core.firmware.ccm_one_core import build_ccm_one_core
from repro.core.firmware.ccm_two_core import build_ccm_ctr_core, build_ccm_mac_core
from repro.core.firmware.ctr import build_ctr
from repro.core.firmware.gcm import build_gcm
from repro.core.firmware.whirlpool_fw import build_whirlpool
from repro.core.params import Direction
from repro.isa.assembler import assemble
from repro.unit.isa import CuOp, cu_encode

ALL_SOURCES = {
    "ctr": build_ctr(),
    "gcm_enc": build_gcm(Direction.ENCRYPT),
    "gcm_dec": build_gcm(Direction.DECRYPT),
    "cbc_enc": build_cbc_mac(Direction.ENCRYPT),
    "cbc_ver": build_cbc_mac(Direction.DECRYPT),
    "ccm1_enc": build_ccm_one_core(Direction.ENCRYPT),
    "ccm1_dec": build_ccm_one_core(Direction.DECRYPT),
    "ccm2_mac_enc": build_ccm_mac_core(Direction.ENCRYPT),
    "ccm2_mac_dec": build_ccm_mac_core(Direction.DECRYPT),
    "ccm2_ctr_enc": build_ccm_ctr_core(Direction.ENCRYPT),
    "ccm2_ctr_dec": build_ccm_ctr_core(Direction.DECRYPT),
    "whirlpool": build_whirlpool(),
}


@pytest.mark.parametrize("name,src", ALL_SOURCES.items(), ids=list(ALL_SOURCES))
def test_all_sources_assemble(name, src):
    prog = assemble(src, name)
    assert len(prog) > 10
    listing = prog.disassemble()
    assert "OUTPUT" in listing


def test_pred_idiom_spacing():
    """pred() emits exactly 3 controller instructions = 6 cycles."""
    fw = FW("t").pred(CuOp.XOR, 1, 2)
    prog = assemble(fw.source())
    assert len(prog) == 3  # LOAD, OUTPUT, NOP


def test_fin_pre_idiom_shape():
    fw = FW("t").fin_pre(CuOp.FAES, 2, CuOp.SAES, 0)
    text = fw.source()
    # prefetch happens between the finalize OUTPUT and the HALT.
    order = [
        line.split()[0]
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith(";")
    ]
    assert order == ["LOAD", "OUTPUT", "LOAD", "HALT", "OUTPUT", "NOP"]


def test_cu_bytes_are_correctly_encoded():
    fw = FW("t").pred(CuOp.SGFM, 1)
    loads = [l for l in fw.source().splitlines() if "LOAD" in l]
    value = int(loads[0].split(",")[1].strip())
    assert value == cu_encode(CuOp.SGFM, 1, 0)


def test_gcm_enc_and_dec_differ_in_loop_order():
    enc, dec = ALL_SOURCES["gcm_enc"], ALL_SOURCES["gcm_dec"]
    assert enc != dec
    # Decrypt GHASHes the ciphertext *before* the XOR; encrypt after.
    enc_loop = enc[enc.index("main_loop"):]
    dec_loop = dec[dec.index("main_loop"):]
    assert enc_loop.index("ct = ks ^ pt") < enc_loop.index("GHASH(ct)")
    assert dec_loop.index("GHASH(ct)") < dec_loop.index("pt = ks ^ ct")


def test_every_program_reports_result():
    for name, src in ALL_SOURCES.items():
        assert re.search(r"OUTPUT s3, 32", src), name  # P_RESULT = 0x20


def test_drain_fence_guards_every_result():
    """The CU-drain fence must precede the first result write.

    A bare HALT is not a sufficient guard: the done wire latches one
    pulse, and under FIFO-stall backpressure a stale pulse can wake
    the HALT while tail STOREs are still queued — publishing the
    result then frees the core for reassignment mid-drain (the
    ``reset while busy`` crash).  The fence is NOP + HALT + a status
    poll on the CU-busy bit (see ``FW.drain_cu``).  The AUTH_FAIL
    branch shares the fence emitted by check_equ_and_finish, so only
    the *first* result write needs one in its backward window.
    """
    for name, src in ALL_SOURCES.items():
        lines = [l.strip() for l in src.splitlines()]
        first = next(
            i for i, l in enumerate(lines) if l.startswith("OUTPUT s3, 32")
        )
        window = " ".join(lines[max(0, first - 14): first])
        assert "HALT" in window, name
        assert "cu_drain_" in window, name  # busy-poll loop label
