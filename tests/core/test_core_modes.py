"""Device-vs-gold: every mode, both directions, on the simulated core.

These are the central integration tests: formatted packets run through
the full microarchitectural model (controller + firmware + CU) and the
outputs must be bit-exact against :mod:`repro.crypto`.
"""

import pytest

from repro.core.params import Direction
from repro.crypto import AES, cbc_mac, ccm_encrypt, gcm_encrypt, whirlpool
from repro.crypto.modes.ctr import ctr_xcrypt
from repro.radio import (
    format_cbc_mac,
    format_ccm_single,
    format_ctr,
    format_gcm,
    format_whirlpool,
    parse_output,
)
from tests.conftest import run_single_core

KEY = bytes(range(16))
KEY24 = bytes(range(24))
KEY32 = bytes(range(32))


@pytest.mark.parametrize("key", [KEY, KEY24, KEY32], ids=["k128", "k192", "k256"])
@pytest.mark.parametrize("size", [16, 48, 100, 2048], ids=str)
def test_gcm_encrypt_matches_gold(key, size, rb):
    iv, aad, data = rb(12), rb(20), rb(size)
    task = format_gcm(8 * len(key), iv, aad, data, Direction.ENCRYPT)
    run, _, _ = run_single_core(task, key)
    ct, tag = parse_output(task, run.output_blocks)
    assert (ct, tag) == gcm_encrypt(key, iv, data, aad)


@pytest.mark.parametrize("size", [0, 1, 15, 17, 255], ids=str)
def test_gcm_partial_blocks_and_gmac(size, rb):
    iv, aad, data = rb(12), rb(33), rb(size)
    task = format_gcm(128, iv, aad, data, Direction.ENCRYPT)
    run, _, _ = run_single_core(task, KEY)
    ct, tag = parse_output(task, run.output_blocks)
    assert (ct, tag) == gcm_encrypt(KEY, iv, data, aad)


def test_gcm_decrypt_and_purge_on_tamper(rb):
    iv, aad, data = rb(12), rb(10), rb(300)
    ct, tag = gcm_encrypt(KEY, iv, data, aad)
    task = format_gcm(128, iv, aad, ct, Direction.DECRYPT, 16, tag)
    run, core, _ = run_single_core(task, KEY)
    pt, _ = parse_output(task, run.output_blocks)
    assert run.result.ok and pt == data

    bad = bytes([tag[0] ^ 1]) + tag[1:]
    task = format_gcm(128, iv, aad, ct, Direction.DECRYPT, 16, bad)
    run, core, _ = run_single_core(task, KEY)
    assert run.result.auth_failed
    assert run.output_blocks == []  # FIFO purged: no plaintext leaks
    assert core.out_fifo.purge_count == 1


def test_gcm_truncated_tag(rb):
    iv, data = rb(12), rb(64)
    task = format_gcm(128, iv, b"", data, Direction.ENCRYPT, tag_length=8)
    run, _, _ = run_single_core(task, KEY)
    _, tag = parse_output(task, run.output_blocks)
    assert tag == gcm_encrypt(KEY, iv, data, b"", tag_length=8)[1]


@pytest.mark.parametrize("size", [16, 33, 256], ids=str)
def test_ctr_matches_gold(size, rb):
    icb = rb(14) + bytes(2)
    data = rb(size)
    task = format_ctr(128, icb, data)
    run, _, _ = run_single_core(task, KEY)
    out, _ = parse_output(task, run.output_blocks)
    assert out == ctr_xcrypt(AES(KEY), icb, data)


def test_ctr_is_self_inverse_via_device(rb):
    icb = rb(14) + bytes(2)
    data = rb(90)
    task = format_ctr(128, icb, data)
    run, _, _ = run_single_core(task, KEY)
    ct, _ = parse_output(task, run.output_blocks)
    task2 = format_ctr(128, icb, ct)
    run2, _, _ = run_single_core(task2, KEY)
    pt, _ = parse_output(task2, run2.output_blocks)
    assert pt == data


@pytest.mark.parametrize("blocks", [1, 2, 7], ids=str)
def test_cbc_mac_generate_and_verify(blocks, rb):
    msg = rb(16 * blocks)
    task = format_cbc_mac(128, msg, Direction.ENCRYPT)
    run, _, _ = run_single_core(task, KEY)
    _, tag = parse_output(task, run.output_blocks)
    assert tag == cbc_mac(AES(KEY), msg)

    vtask = format_cbc_mac(128, msg, Direction.DECRYPT, expected_tag=tag)
    vrun, _, _ = run_single_core(vtask, KEY)
    assert vrun.result.ok

    bad = format_cbc_mac(128, msg, Direction.DECRYPT, expected_tag=bytes(16))
    brun, _, _ = run_single_core(bad, KEY)
    assert brun.result.auth_failed


@pytest.mark.parametrize("key", [KEY, KEY24, KEY32], ids=["k128", "k192", "k256"])
@pytest.mark.parametrize("size,aad", [(64, 0), (100, 25), (2048, 16)], ids=str)
def test_ccm_single_core_encrypt(key, size, aad, rb):
    nonce, header, data = rb(13), rb(aad), rb(size)
    task = format_ccm_single(8 * len(key), nonce, header, data, Direction.ENCRYPT, 8)
    run, _, _ = run_single_core(task, key)
    ct, tag = parse_output(task, run.output_blocks)
    assert (ct, tag) == ccm_encrypt(key, nonce, data, header, 8)


def test_ccm_single_core_decrypt_and_tamper(rb):
    nonce, header, data = rb(13), rb(21), rb(500)
    ct, tag = ccm_encrypt(KEY, nonce, data, header, 8)
    task = format_ccm_single(128, nonce, header, ct, Direction.DECRYPT, 8, tag)
    run, _, _ = run_single_core(task, KEY)
    pt, _ = parse_output(task, run.output_blocks)
    assert run.result.ok and pt == data

    task = format_ccm_single(128, nonce, header, ct, Direction.DECRYPT, 8, bytes(8))
    run, core, _ = run_single_core(task, KEY)
    assert run.result.auth_failed and run.output_blocks == []


def test_ccm_no_payload_mac_only(rb):
    nonce, header = rb(13), rb(40)
    task = format_ccm_single(128, nonce, header, b"", Direction.ENCRYPT, 16)
    run, _, _ = run_single_core(task, KEY)
    _, tag = parse_output(task, run.output_blocks)
    assert tag == ccm_encrypt(KEY, nonce, b"", header, 16)[1]


@pytest.mark.parametrize("size", [0, 10, 64, 200], ids=str)
def test_whirlpool_personality(size, rb):
    msg = rb(size)
    task = format_whirlpool(msg)
    from repro.core.crypto_core import CryptoCore
    from repro.core.harness import run_task
    from repro.sim.kernel import Simulator
    from repro.unit.timing import DEFAULT_TIMING

    sim = Simulator()
    core = CryptoCore(sim, DEFAULT_TIMING)
    core.use_whirlpool_personality(True)
    run = run_task(sim, core, task)
    assert b"".join(run.output_blocks)[:64] == whirlpool(msg)
