"""Core infrastructure: key cache, params, firmware library, lifecycle."""

import pytest

from repro.core import Algorithm, CcmRole, Direction, TaskParams, firmware_for
from repro.core.firmware import FIRMWARE_LIBRARY
from repro.core.key_cache import KeyCache
from repro.core.params import PORT_DATA_BLOCKS, PORT_FINAL_MASK_HI, PORT_FLAGS
from repro.crypto.aes import expand_key
from repro.errors import CoreError, FirmwareError, KeyStoreError
from repro.isa.opcodes import IMEM_WORDS


def test_key_cache_lifecycle():
    cache = KeyCache()
    assert not cache.loaded
    with pytest.raises(KeyStoreError):
        cache.round_keys()
    cache.install(expand_key(bytes(24)), 192, key_id=3)
    assert cache.loaded and cache.key_bits == 192 and cache.key_id == 3
    assert len(cache.round_keys()) == 13
    cache.invalidate()
    assert not cache.loaded


def test_key_cache_validates_shape():
    cache = KeyCache()
    with pytest.raises(KeyStoreError):
        cache.install(expand_key(bytes(16)), 192)  # wrong rounds for bits
    with pytest.raises(KeyStoreError):
        cache.install(expand_key(bytes(16)), 160)


def test_task_params_masks_and_ports():
    p = TaskParams(
        algorithm=Algorithm.GCM,
        aad_blocks=2,
        data_blocks=5,
        tag_length=8,
        final_block_bytes=3,
    )
    assert p.final_mask == 0b111 << 13  # first 3 bytes
    assert p.tag_mask == 0xFF00
    assert p.port_value(PORT_DATA_BLOCKS) == 5
    assert p.port_value(PORT_FINAL_MASK_HI) == (p.final_mask >> 8) & 0xFF
    assert p.port_value(PORT_FLAGS) == 0
    dec = TaskParams(algorithm=Algorithm.CCM, direction=Direction.DECRYPT, role=CcmRole.CTR)
    assert dec.port_value(PORT_FLAGS) == 0x05


def test_task_params_validation():
    with pytest.raises(FirmwareError):
        TaskParams(algorithm=Algorithm.GCM, key_bits=100)
    with pytest.raises(FirmwareError):
        TaskParams(algorithm=Algorithm.GCM, data_blocks=300)
    with pytest.raises(FirmwareError):
        TaskParams(algorithm=Algorithm.GCM, final_block_bytes=0)


def test_firmware_library_complete_and_fits():
    # Every (algorithm, direction, role) the device supports exists and
    # fits the 1024-word instruction memory.
    for d in Direction:
        for alg, roles in [
            (Algorithm.CTR, [CcmRole.SINGLE]),
            (Algorithm.GCM, [CcmRole.SINGLE]),
            (Algorithm.CBC_MAC, [CcmRole.SINGLE]),
            (Algorithm.CCM, [CcmRole.SINGLE, CcmRole.MAC, CcmRole.CTR]),
            (Algorithm.WHIRLPOOL, [CcmRole.SINGLE]),
        ]:
            for role in roles:
                prog = firmware_for(alg, d, role)
                assert 0 < len(prog) <= IMEM_WORDS
    assert len(FIRMWARE_LIBRARY) == 14


def test_firmware_for_unknown_raises():
    with pytest.raises(FirmwareError):
        firmware_for(Algorithm.CTR, Direction.ENCRYPT, CcmRole.MAC)


def test_core_rejects_double_assignment(rb):
    from repro.core.crypto_core import CryptoCore
    from repro.sim.kernel import Simulator
    from repro.unit.timing import DEFAULT_TIMING

    sim = Simulator()
    core = CryptoCore(sim, DEFAULT_TIMING)
    core.key_cache.install(expand_key(bytes(16)), 128)
    params = TaskParams(algorithm=Algorithm.CTR, data_blocks=1)
    core.assign_task(params)
    with pytest.raises(CoreError):
        core.assign_task(params)


def test_core_reconfigure_refused_while_busy():
    from repro.core.crypto_core import CryptoCore
    from repro.sim.kernel import Simulator
    from repro.unit.timing import DEFAULT_TIMING

    sim = Simulator()
    core = CryptoCore(sim, DEFAULT_TIMING)
    core.key_cache.install(expand_key(bytes(16)), 128)
    core.assign_task(TaskParams(algorithm=Algorithm.CTR, data_blocks=1))
    with pytest.raises(CoreError):
        core.use_whirlpool_personality(True)


def test_premature_result_defers_until_cu_drains(rb):
    """A program that publishes its result without the drain fence must
    not mark the core reassignable while tail STOREs are queued.

    The shipped firmware always emits ``FW.drain_cu`` before the result
    write; this pins the core-level backstop for custom programs (and
    documents the pre-fence failure: under FIFO backpressure the
    scheduler could grab a core mid-drain and hit ``reset while busy``).
    """
    from repro.core.crypto_core import CryptoCore
    from repro.core.firmware.builder import FW
    from repro.isa.assembler import assemble
    from repro.sim.kernel import Simulator
    from repro.unit.isa import CuOp
    from repro.unit.timing import DEFAULT_TIMING

    fw = FW("premature result")
    fw.pred(CuOp.XOR, 0, 1)
    fw.pred(CuOp.XOR, 0, 1)
    fw.pred(CuOp.STORE, 1)
    # No drain_cu: result goes out while the XOR/STORE tail is queued.
    fw.raw("    LOAD   s3, 1")
    fw.raw("    OUTPUT s3, 32")
    fw.raw("    RETURN")
    program = assemble(fw.source(), "premature")

    sim = Simulator()
    core = CryptoCore(sim, DEFAULT_TIMING)
    core.key_cache.install(expand_key(bytes(16)), 128)
    core.unit.bank.write(0, rb(16))
    core.unit.bank.write(1, rb(16))
    done = core.assign_task(
        TaskParams(algorithm=Algorithm.CTR, data_blocks=1), program=program
    )
    sim.run()
    assert done.triggered and not core.busy
    # Completion waited for the drain: the STORE's words are in the
    # output FIFO by the time the task reports done.
    assert core.out_fifo.can_pop()
    assert not core.unit.busy and not core.unit._queue
