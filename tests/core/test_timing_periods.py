"""E1: the paper's loop equations emerge from simulated firmware.

Section VII.A: T_GCM = 49, T_CBC = 55, T_CCM(1 core) = 104 for 128-bit
keys, +8 per key-size step per AES pass.  These tests measure the
steady-state issue periods of real firmware running on the simulated
controller + CU and compare them with the published equations.
"""

from collections import Counter

import pytest

from repro.analysis.cycles import paper_loop_cycles
from repro.core.params import Direction
from repro.radio import format_cbc_mac, format_ccm_single, format_ctr, format_gcm

from tests.conftest import run_single_core
from repro.sim.tracing import TraceRecorder

KEYS = {128: bytes(range(16)), 192: bytes(range(24)), 256: bytes(range(32))}


def modal_period(trace, op="SAES", stride=1):
    cycles = [
        e.cycle
        for e in trace.filter(None, "issue")
        if e.details.get("op") == op
    ]
    periods = [b - a for a, b in zip(cycles[::stride], cycles[stride::stride])]
    assert periods, "no steady state observed"
    return Counter(periods).most_common(1)[0][0]


def run_traced(task, key):
    trace = TraceRecorder(enabled=True)
    run, core, sim = run_single_core(task, key, trace)
    assert run.result.ok
    return trace


@pytest.mark.parametrize("key_bits", [128, 192, 256])
def test_gcm_loop_period(key_bits, rb):
    task = format_gcm(key_bits, rb(12), b"", rb(2048), Direction.ENCRYPT)
    trace = run_traced(task, KEYS[key_bits])
    assert modal_period(trace) == paper_loop_cycles("gcm", key_bits)


@pytest.mark.parametrize("key_bits", [128, 192, 256])
def test_ctr_loop_period(key_bits, rb):
    task = format_ctr(key_bits, rb(14) + bytes(2), rb(2048))
    trace = run_traced(task, KEYS[key_bits])
    assert modal_period(trace) == paper_loop_cycles("ctr", key_bits)


@pytest.mark.parametrize("key_bits", [128, 192, 256])
def test_cbc_mac_loop_period(key_bits, rb):
    task = format_cbc_mac(key_bits, rb(2048), Direction.ENCRYPT)
    trace = run_traced(task, KEYS[key_bits])
    assert modal_period(trace) == paper_loop_cycles("cbc", key_bits)


@pytest.mark.parametrize("key_bits", [128, 192, 256])
def test_ccm_one_core_loop_period(key_bits, rb):
    task = format_ccm_single(key_bits, rb(13), b"", rb(2048), Direction.ENCRYPT, 8)
    trace = run_traced(task, KEYS[key_bits])
    # Two SAES per block (CTR + CBC halves): stride 2 gives the block period.
    assert modal_period(trace, stride=2) == paper_loop_cycles("ccm1", key_bits)


def test_gcm_2kb_packet_throughput_shape(rb):
    """The 2 KB-packet number sits between 85% and 100% of theoretical."""
    task = format_gcm(128, rb(12), b"", rb(2048), Direction.ENCRYPT)
    trace = TraceRecorder(enabled=True)
    run, core, sim = run_single_core(task, KEYS[128], trace)
    theoretical = 128 * 190e6 / 49 / 1e6
    measured = 2048 * 8 * 190e6 / run.result.cycles / 1e6
    assert 0.85 * theoretical < measured < theoretical


def test_ghash_not_the_bottleneck(rb):
    """GHASH (43 cycles) hides entirely under the 49-cycle AES period."""
    task = format_gcm(128, rb(12), b"", rb(2048), Direction.ENCRYPT)
    trace = run_traced(task, KEYS[128])
    sgfm = [e.cycle for e in trace.filter(None, "issue") if e.details.get("op") == "SGFM"]
    periods = [b - a for a, b in zip(sgfm, sgfm[1:])]
    assert Counter(periods).most_common(1)[0][0] == 49
