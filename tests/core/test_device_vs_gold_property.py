"""Property test: random packets through the device equal the gold model.

The strongest single invariant in the repository: for arbitrary
payload/AAD shapes and key sizes, the microarchitectural simulation
(firmware on the 8-bit controller driving the CU) produces byte-exact
GCM/CCM/CTR results.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import Direction
from repro.crypto import AES, ccm_encrypt, gcm_encrypt
from repro.crypto.modes.ctr import ctr_xcrypt
from repro.radio import format_ccm_single, format_ctr, format_gcm, parse_output

from tests.conftest import run_single_core

keys = st.sampled_from([bytes(range(16)), bytes(range(24)), bytes(range(32))])
payloads = st.binary(min_size=0, max_size=120)
aads = st.binary(min_size=0, max_size=40)


@given(keys, payloads, aads, st.binary(min_size=12, max_size=12))
@settings(max_examples=12, deadline=None)
def test_gcm_device_equals_gold(key, data, aad, iv):
    task = format_gcm(8 * len(key), iv, aad, data, Direction.ENCRYPT)
    run, _, _ = run_single_core(task, key)
    assert run.result.ok
    ct, tag = parse_output(task, run.output_blocks)
    assert (ct, tag) == gcm_encrypt(key, iv, data, aad)


@given(keys, payloads, aads, st.binary(min_size=13, max_size=13))
@settings(max_examples=12, deadline=None)
def test_ccm_device_equals_gold(key, data, aad, nonce):
    task = format_ccm_single(8 * len(key), nonce, aad, data, Direction.ENCRYPT, 8)
    run, _, _ = run_single_core(task, key)
    assert run.result.ok
    ct, tag = parse_output(task, run.output_blocks)
    assert (ct, tag) == ccm_encrypt(key, nonce, data, aad, 8)


@given(keys, payloads, st.binary(min_size=14, max_size=14))
@settings(max_examples=12, deadline=None)
def test_ctr_device_equals_gold(key, data, prefix):
    icb = prefix + bytes(2)
    task = format_ctr(8 * len(key), icb, data)
    run, _, _ = run_single_core(task, key)
    assert run.result.ok
    out, _ = parse_output(task, run.output_blocks)
    assert out == ctr_xcrypt(AES(key), icb, data)


@given(keys, payloads, aads, st.binary(min_size=12, max_size=12))
@settings(max_examples=8, deadline=None)
def test_gcm_device_decrypt_roundtrip(key, data, aad, iv):
    ct, tag = gcm_encrypt(key, iv, data, aad)
    task = format_gcm(8 * len(key), iv, aad, ct, Direction.DECRYPT, 16, tag)
    run, _, _ = run_single_core(task, key)
    assert run.result.ok
    pt, _ = parse_output(task, run.output_blocks)
    assert pt == data
