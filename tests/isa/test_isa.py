"""8-bit controller: encoding round-trips, assembler, interpreter."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import AssemblerError, DecodeError, ExecutionError
from repro.isa import Controller8, Op, assemble, decode, encode
from repro.isa.opcodes import ADDRESS_OPS, NULLARY_OPS, REGISTER_FORMS, SHIFT_OPS
from repro.sim.kernel import Delay, Simulator


# -- encoding ------------------------------------------------------------------

@given(st.sampled_from(sorted(Op)), st.integers(0, 15), st.integers(0, 255))
@settings(max_examples=100, deadline=None)
def test_encode_decode_roundtrip(op, sx, operand):
    if op in ADDRESS_OPS:
        word = encode(op, addr=operand)
        decoded = decode(word)
        assert decoded.op == op and decoded.addr == operand
    else:
        word = encode(op, sx, operand)
        decoded = decode(word)
        assert (decoded.op, decoded.sx, decoded.operand) == (op, sx, operand)


def test_decode_rejects_garbage():
    with pytest.raises(DecodeError):
        decode(0x3F << 12)  # unknown opcode
    with pytest.raises(DecodeError):
        decode(1 << 18)
    with pytest.raises(DecodeError):
        encode(Op.LOAD, sx=16)


def test_op_space_partition():
    # Every opcode is exactly one of: address-form, nullary, reg/imm.
    for op in Op:
        kinds = [op in ADDRESS_OPS, op in NULLARY_OPS, op in SHIFT_OPS or op in REGISTER_FORMS or True]
        assert any(kinds)


# -- assembler -----------------------------------------------------------------

def run_program(src, device=None):
    sim = Simulator()
    c = Controller8(sim, assemble(src), device=device)
    sim.add_process(c.run())
    sim.run()
    return c, sim


def test_arithmetic_and_flags():
    c, _ = run_program(
        """
        LOAD s0, 200
        ADD  s0, 100      ; 300 -> 44 with carry
        """
    )
    assert c.regs[0] == 44
    assert c.carry


def test_sub_borrow_and_zero():
    c, _ = run_program(
        """
        LOAD s0, 5
        SUB  s0, 5
        """
    )
    assert c.regs[0] == 0
    assert c.zero and not c.carry
    c, _ = run_program("LOAD s0, 3\nSUB s0, 5")
    assert c.regs[0] == 254 and c.carry


def test_logic_clears_carry():
    c, _ = run_program(
        """
        LOAD s0, 255
        ADD  s0, 10       ; sets carry
        AND  s0, 0xF0
        """
    )
    assert not c.carry


def test_register_forms_and_compare():
    c, _ = run_program(
        """
        LOAD s1, 7
        LOAD s2, 7
        COMPARE s1, s2
        """
    )
    assert c.zero


def test_shifts_and_rotates():
    c, _ = run_program("LOAD s0, 0x81\nSR0 s0")
    assert c.regs[0] == 0x40 and c.carry
    c, _ = run_program("LOAD s0, 0x81\nRL s0")
    assert c.regs[0] == 0x03 and c.carry


def test_jump_loop_and_labels():
    c, _ = run_program(
        """
        CONSTANT n, 5
        LOAD s0, n
        LOAD s1, 0
        top: ADD s1, 2
        SUB  s0, 1
        JUMP NZ, top
        """
    )
    assert c.regs[1] == 10


def test_call_return_and_stack():
    c, _ = run_program(
        """
        LOAD s0, 1
        CALL sub
        ADD  s0, 1
        RETURN
        sub: ADD s0, 10
        RETURN
        """
    )
    assert c.regs[0] == 12
    assert c.stack == []


def test_scratchpad_store_fetch():
    c, _ = run_program(
        """
        LOAD s0, 0xAB
        STORE s0, 5
        LOAD s1, 5
        FETCH s2, (s1)
        """
    )
    assert c.regs[2] == 0xAB


def test_ports_and_indirect_io():
    written = {}

    class Dev:
        def read_port(self, p):
            return p + 1

        def write_port(self, p, v):
            written[p] = v

    c, _ = run_program(
        """
        INPUT  s0, 0x10       ; -> 0x11
        LOAD   s1, 0x20
        OUTPUT s0, (s1)
        """,
        device=Dev(),
    )
    assert written == {0x20: 0x11}


def test_cpi_is_two():
    c, sim = run_program("LOAD s0, 1\nADD s0, 2\nRETURN")
    assert sim.now == 2 * c.instructions_retired


def test_halt_wakes_on_pulse():
    sim = Simulator()
    c = Controller8(sim, assemble("HALT\nLOAD s0, 9\nRETURN"))
    sim.add_process(c.run())

    def waker():
        yield Delay(31)
        c.wake.pulse()

    sim.add_process(waker())
    sim.run()
    assert c.regs[0] == 9 and sim.now >= 31


def test_assembler_errors():
    with pytest.raises(AssemblerError):
        assemble("BOGUS s0, 1")
    with pytest.raises(AssemblerError):
        assemble("LOAD s0, 256")
    with pytest.raises(AssemblerError):
        assemble("JUMP nowhere")
    with pytest.raises(AssemblerError):
        assemble("dup: NOP\ndup: NOP")
    with pytest.raises(AssemblerError):
        assemble("INPUT s0, s1")  # indirect needs parentheses


def test_disassembly_includes_source():
    prog = assemble("LOAD s0, 1  ; hello")
    assert "hello" in prog.disassemble()


def test_pc_out_of_range():
    prog = assemble("NOP")
    with pytest.raises(ExecutionError):
        prog.fetch(5)


def test_interrupt_vector_and_returni():
    src = """
        EINT
        LOAD s0, 1
        LOAD s0, 2
        LOAD s0, 3
        RETURN
        isr: LOAD s1, 0xEE
        RETURNI ENABLE
    """
    sim = Simulator()
    prog = assemble(src)
    c = Controller8(sim, prog)
    c.irq_vector = prog.label("isr")
    sim.add_process(c.run())

    def irq():
        yield Delay(5)
        c.post_irq()

    sim.add_process(irq())
    sim.run()
    assert c.regs[1] == 0xEE
    assert c.regs[0] == 3
    assert c.interrupts_enabled
