"""Partial reconfiguration: Table IV timings, capacity, personality swap."""

import pytest

from repro.core.crypto_core import CryptoCore
from repro.errors import BitstreamError, ReconfigError, RegionCapacityError
from repro.reconfig import (
    Bitstream,
    BitstreamStore,
    MODULE_LIBRARY,
    ReconfigManager,
    ReconfigurableRegion,
    StoreKind,
)
from repro.sim.kernel import Simulator
from repro.unit.timing import DEFAULT_TIMING

#: Table IV published values (module -> (cf_ms, ram_ms)).
PAPER_TABLE4 = {"aes": (380, 63), "whirlpool": (416, 69)}


@pytest.mark.parametrize("module,times", PAPER_TABLE4.items(), ids=str)
def test_table4_reconfig_times_within_5pct(module, times):
    cf_ms, ram_ms = times
    cf = BitstreamStore(StoreKind.COMPACT_FLASH)
    ram = BitstreamStore(StoreKind.RAM)
    assert cf.load_seconds(module) * 1000 == pytest.approx(cf_ms, rel=0.05)
    assert ram.load_seconds(module) * 1000 == pytest.approx(ram_ms, rel=0.05)


def test_module_library_matches_table4_areas():
    assert MODULE_LIBRARY["aes"].slices == 351
    assert MODULE_LIBRARY["aes"].brams == 4
    assert MODULE_LIBRARY["whirlpool"].slices == 1153
    assert MODULE_LIBRARY["whirlpool"].size_bytes == 97_000


def test_region_capacity_enforced():
    region = ReconfigurableRegion(0)
    region.load(MODULE_LIBRARY["whirlpool"])  # 1153 <= 1280
    assert region.utilisation == pytest.approx(1153 / 1280)
    big = Bitstream("huge", 1, slices=2000, brams=4, personality="aes")
    with pytest.raises(RegionCapacityError):
        region.check_fit(big)


def test_unknown_bitstream():
    store = BitstreamStore(StoreKind.RAM)
    with pytest.raises(BitstreamError):
        store.get("nope")


def make_manager(kind=StoreKind.COMPACT_FLASH):
    sim = Simulator()
    cores = [CryptoCore(sim, DEFAULT_TIMING, index=i) for i in range(2)]
    manager = ReconfigManager(sim, cores, BitstreamStore(kind))
    return sim, cores, manager


def test_manager_swaps_personality_and_charges_time():
    sim, cores, manager = make_manager()
    record = manager.reconfigure_sync(0, "whirlpool")
    assert cores[0].active_unit is cores[0].whirlpool_unit
    assert record.seconds * 1000 == pytest.approx(416, rel=0.05)
    back = manager.reconfigure_sync(0, "aes")
    assert cores[0].active_unit is cores[0].unit
    # Second AES load is cached -> RAM-class speed despite the CF store.
    record2 = manager.reconfigure_sync(0, "whirlpool")
    assert record2.cached
    assert record2.seconds * 1000 == pytest.approx(69, rel=0.05)
    assert len(manager.history) == 3
    assert back.module == "aes"


def test_manager_refuses_busy_core(rb):
    from repro.core.params import Algorithm, TaskParams
    from repro.crypto.aes import expand_key

    sim, cores, manager = make_manager()
    cores[0].key_cache.install(expand_key(bytes(16)), 128)
    cores[0].assign_task(TaskParams(algorithm=Algorithm.CTR, data_blocks=1))
    with pytest.raises(ReconfigError):
        manager.reconfigure(0, "whirlpool")
    with pytest.raises(ReconfigError):
        manager.reconfigure(5, "aes")


def test_other_cores_keep_working_during_reconfig(rb):
    """Section VII.B: reconfiguring one region does not stop the others."""
    from repro.core.harness import run_task
    from repro.core.params import Direction
    from repro.crypto import gcm_encrypt
    from repro.crypto.aes import expand_key
    from repro.radio import format_gcm, parse_output

    sim, cores, manager = make_manager(StoreKind.RAM)
    done = manager.reconfigure(0, "whirlpool")
    key, iv, data = rb(16), rb(12), rb(64)
    cores[1].key_cache.install(expand_key(key), 128)
    task = format_gcm(128, iv, b"", data, Direction.ENCRYPT)
    run = run_task(sim, cores[1], task)
    ct, tag = parse_output(task, run.output_blocks)
    assert (ct, tag) == gcm_encrypt(key, iv, data, b"")
    sim.run_until_event(done)
    assert cores[0].active_unit is cores[0].whirlpool_unit
