"""Mapping policies: first-idle (paper), round-robin, priority, latency."""

from repro import Algorithm, Direction, Mccp, Simulator
from repro.radio import format_gcm
from repro.sched import (
    FirstIdlePolicy,
    LatencyAwarePolicy,
    PriorityReservePolicy,
    RoundRobinPolicy,
)


def make(policy, cores=4):
    sim = Simulator()
    mccp = Mccp(sim, core_count=cores, policy=policy)
    mccp.load_session_key(0, bytes(16))
    chan = mccp.open_channel(Algorithm.GCM, 0)
    return sim, mccp, chan


def submit_one(mccp, chan, rb, priority=1, feed=False):
    task = format_gcm(128, rb(12), b"", rb(32), Direction.ENCRYPT)
    request = mccp.submit(chan.channel_id, [task], priority)
    if feed:
        core = mccp.cores[request.core_indices[0]]
        for block in task.input_blocks:
            core.in_fifo.push_block(block)
    return request


def test_first_idle_picks_lowest_indices(rb):
    sim, mccp, chan = make(FirstIdlePolicy())
    r1 = submit_one(mccp, chan, rb)
    r2 = submit_one(mccp, chan, rb)
    assert r1.core_indices == (0,)
    assert r2.core_indices == (1,)


def test_first_idle_rejects_when_full(rb):
    sim, mccp, chan = make(FirstIdlePolicy(), cores=1)
    submit_one(mccp, chan, rb)
    assert FirstIdlePolicy().select_cores(mccp.scheduler, 1) is None


def test_round_robin_rotates(rb):
    policy = RoundRobinPolicy()
    sim, mccp, chan = make(policy)
    first = submit_one(mccp, chan, rb, feed=True).core_indices[0]
    # Finish everything, then submit again: a different core starts.
    for req in list(mccp.scheduler.requests.values()):
        sim.run_until_event(req.ready_event, limit=10_000_000)
    second = submit_one(mccp, chan, rb).core_indices[0]
    assert second != first


def test_priority_reserve_blocks_bulk(rb):
    policy = PriorityReservePolicy(reserved_cores=2, priority_threshold=0)
    sim, mccp, chan = make(policy)
    # Bulk traffic may only use cores 0..1.
    a = submit_one(mccp, chan, rb, priority=2)
    b = submit_one(mccp, chan, rb, priority=2)
    assert set(a.core_indices) | set(b.core_indices) == {0, 1}
    assert policy.select_cores(mccp.scheduler, 1, priority=2) is None
    # Voice still gets the reserved cores.
    v = submit_one(mccp, chan, rb, priority=0)
    assert v.core_indices[0] in (2, 3)


def test_latency_aware_prefers_neighbour_pairs(rb):
    policy = LatencyAwarePolicy()
    sim, mccp, chan = make(policy)
    assert policy.prefer_two_core(mccp.scheduler, priority=0)
    pair = policy.select_cores(mccp.scheduler, 2, priority=0)
    assert pair is not None
    i, j = pair
    assert (i + 1) % len(mccp.cores) == j
    # Under load the split preference disappears.
    for _ in range(3):
        submit_one(mccp, chan, rb)
    assert not policy.prefer_two_core(mccp.scheduler, priority=0)


def test_latency_aware_single_fallback(rb):
    policy = LatencyAwarePolicy()
    sim, mccp, chan = make(policy, cores=2)
    submit_one(mccp, chan, rb)
    assert policy.select_cores(mccp.scheduler, 2) is None
    assert policy.select_cores(mccp.scheduler, 1) is not None
