"""Utility layer: bit/word conversions, byte ops, validation."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.utils import (
    blocks_of,
    bytes_to_int,
    bytes_to_words32,
    ceil_div,
    check_length,
    check_range,
    check_type,
    int_to_bytes,
    pad_zeros,
    rotl8,
    rotl32,
    rotr8,
    split_blocks,
    words32_to_bytes,
    xor_bytes,
)


@given(st.binary(min_size=4, max_size=64).filter(lambda b: len(b) % 4 == 0))
@settings(max_examples=50, deadline=None)
def test_words_roundtrip(data):
    assert words32_to_bytes(bytes_to_words32(data)) == data


def test_words_reject_bad_sizes():
    with pytest.raises(ValueError):
        bytes_to_words32(bytes(3))
    with pytest.raises(ValueError):
        words32_to_bytes([1 << 32])


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
@settings(max_examples=50, deadline=None)
def test_int_bytes_roundtrip(n):
    assert bytes_to_int(int_to_bytes(n, 8)) == n


def test_int_to_bytes_errors():
    with pytest.raises(ValueError):
        int_to_bytes(-1, 4)
    with pytest.raises(OverflowError):
        int_to_bytes(1 << 32, 4)


@given(st.integers(0, 255), st.integers(0, 16))
@settings(max_examples=50, deadline=None)
def test_rot8_inverse(value, amount):
    assert rotr8(rotl8(value, amount), amount) == value


def test_rotl32():
    assert rotl32(0x80000000, 1) == 1
    assert rotl32(0x12345678, 0) == 0x12345678
    assert rotl32(0x12345678, 32) == 0x12345678


@given(st.binary(max_size=64), st.binary(max_size=64))
@settings(max_examples=50, deadline=None)
def test_xor_properties(a, b):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    assert xor_bytes(a, b) == xor_bytes(b, a)
    assert xor_bytes(xor_bytes(a, b), b) == a


def test_xor_length_mismatch():
    with pytest.raises(ValueError):
        xor_bytes(b"ab", b"a")


def test_ceil_div():
    assert ceil_div(0, 16) == 0
    assert ceil_div(1, 16) == 1
    assert ceil_div(16, 16) == 1
    assert ceil_div(17, 16) == 2
    with pytest.raises(ValueError):
        ceil_div(1, 0)


@given(st.binary(max_size=100))
@settings(max_examples=50, deadline=None)
def test_pad_zeros(data):
    padded = pad_zeros(data)
    assert len(padded) % 16 == 0
    assert padded[: len(data)] == data
    assert set(padded[len(data):]) <= {0}
    if len(data) % 16 == 0:
        assert padded == data


def test_split_and_blocks_of():
    data = bytes(range(40))
    parts = split_blocks(data)
    assert parts == list(blocks_of(data))
    assert len(parts) == 3
    assert len(parts[-1]) == 8
    assert b"".join(parts) == data


def test_validation_helpers():
    check_type("x", 3, int)
    with pytest.raises(TypeError):
        check_type("x", 3, (bytes, str))
    check_length("d", bytes(16), allowed=(16,))
    with pytest.raises(ValueError):
        check_length("d", bytes(15), allowed=(16,))
    with pytest.raises(ValueError):
        check_length("d", bytes(15), multiple_of=4)
    check_range("n", 5, 0, 10)
    with pytest.raises(ValueError):
        check_range("n", 11, 0, 10)
