"""The adaptive flush controller (``FlushPolicy(mode="auto")``).

Contracts under test, mirroring the ``autotune_sweep`` scenario's hard
gates at unit granularity:

- :func:`decide_knobs` is a pure function: widen only under genuine
  saturation, retarget the deadline only outside the hysteresis band,
  hold otherwise — identical inputs always yield identical knobs.
- The per-channel controller converges: on a steady profile the
  decision trace settles (no oscillation) within a few windows, and
  repeats with the same seed reproduce the trace exactly across the
  inline/thread/process execution backends.
- Auto never changes payload bytes relative to a static policy, and on
  a saturating profile it widens and never trails the static defaults
  on simulated cycles.
- The workload-level advisor is deterministic in ``(profile,
  cpu_count)`` and scales inline -> thread -> process-arena with the
  host and the offered work.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import pytest

from repro.mccp.autotune import (
    AutotuneConfig,
    FlushController,
    TrafficProfile,
    WindowStats,
    advise_backend,
    decide_knobs,
)
from repro.mccp.channel import FlushPolicy
from repro.radio.sdr_platform import (
    ChannelConfig,
    SdrPlatform,
    WorkloadSpec,
    _traffic_profile,
)
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern

CONFIG = AutotuneConfig()


def _stats(**overrides) -> WindowStats:
    base = dict(window_index=0, start_cycle=0, end_cycle=8192)
    base.update(overrides)
    return WindowStats(**base)


class TestDecideKnobs:
    def test_idle_window_holds(self):
        limit, deadline, cause = decide_knobs(
            0, _stats(), 32, 8192, CONFIG
        )
        assert (limit, deadline, cause) == (32, 8192, "hold:idle")

    def test_widens_under_saturation(self):
        stats = _stats(jobs=96, dispatches=3, dispatched_jobs=96,
                       size_flushes=3, queue_peak=80)
        limit, deadline, cause = decide_knobs(0, stats, 32, 8192, CONFIG)
        assert (limit, deadline) == (64, 8192)
        assert cause == "widen:saturated"

    def test_widen_needs_deep_queue(self):
        # Size flushes alone are healthy coalescing, not saturation:
        # the queue must outrun the width 2x before widening.
        stats = _stats(jobs=40, dispatches=1, dispatched_jobs=32,
                       size_flushes=1, queue_peak=40)
        limit, _, cause = decide_knobs(0, stats, 32, 8192, CONFIG)
        assert limit == 32
        assert cause == "hold:steady"

    def test_widen_caps_at_max_coalesce(self):
        stats = _stats(jobs=600, dispatches=4, dispatched_jobs=512,
                       size_flushes=4, queue_peak=512)
        limit, _, cause = decide_knobs(0, stats, 96, 8192, CONFIG)
        assert limit == CONFIG.max_coalesce
        assert cause == "widen:saturated"
        held, _, held_cause = decide_knobs(
            0, stats, CONFIG.max_coalesce, 8192, CONFIG
        )
        assert held == CONFIG.max_coalesce
        assert held_cause == "hold:steady"

    def test_deadline_retargets_on_idle_dominated_traffic(self):
        stats = _stats(jobs=4, dispatches=4, dispatched_jobs=4,
                       deadline_flushes=4, queue_peak=1,
                       max_cluster_span=10)
        limit, deadline, cause = decide_knobs(0, stats, 32, 8192, CONFIG)
        assert limit == 32
        assert deadline == 20  # 2x the widest arrival cluster
        assert cause == "deadline:retarget"

    def test_deadline_hysteresis_band_holds(self):
        # A target inside [deadline // 2, deadline * 2] is close
        # enough: retuning would only oscillate.
        stats = _stats(jobs=4, dispatches=4, dispatched_jobs=4,
                       deadline_flushes=4, max_cluster_span=3000)
        _, deadline, cause = decide_knobs(0, stats, 32, 8192, CONFIG)
        assert deadline == 8192
        assert cause == "hold:steady"

    def test_deadline_respects_ceiling_and_none(self):
        stats = _stats(jobs=4, dispatches=4, dispatched_jobs=4,
                       deadline_flushes=4, max_cluster_span=10 ** 9)
        _, deadline, _ = decide_knobs(0, stats, 32, 2, CONFIG)
        assert deadline == CONFIG.deadline_ceiling
        # No deadline at all -> nothing to retarget.
        _, kept, cause = decide_knobs(
            0, _stats(jobs=4, dispatches=4, dispatched_jobs=4,
                      deadline_flushes=4),
            32, None, CONFIG,
        )
        assert kept is None
        assert cause == "hold:steady"

    def test_pure_function(self):
        stats = _stats(jobs=96, dispatches=3, dispatched_jobs=96,
                       size_flushes=3, queue_peak=80)
        first = decide_knobs(7, stats, 32, 8192, CONFIG)
        assert all(
            decide_knobs(7, stats, 32, 8192, CONFIG) == first
            for _ in range(5)
        )


class TestConfigValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="window_cycles"):
            AutotuneConfig(window_cycles=0)
        with pytest.raises(ValueError, match="max_coalesce"):
            AutotuneConfig(max_coalesce=0)
        with pytest.raises(ValueError, match="deadline bounds"):
            AutotuneConfig(deadline_floor=100, deadline_ceiling=10)

    def test_workload_spec_normalizes_autotune(self):
        config = ChannelConfig(
            RadioStandard.WIFI, bytes(16), TrafficPattern.CBR, packets=1
        )
        assert WorkloadSpec(configs=(config,)).autotune is None
        assert WorkloadSpec(configs=(config,), autotune=False).autotune is None
        spec = WorkloadSpec(configs=(config,), autotune=True)
        assert spec.autotune == AutotuneConfig()
        custom = AutotuneConfig(window_cycles=1024)
        assert WorkloadSpec(
            configs=(config,), autotune=custom
        ).autotune is custom
        with pytest.raises(TypeError, match="autotune must be"):
            WorkloadSpec(configs=(config,), autotune="yes")


@dataclass
class _Job:
    data: bytes
    priority: int = 1


class _FakeChannel:
    """Just enough channel for the controller's observation hooks."""

    def __init__(self, policy: FlushPolicy):
        self.flush_policy = policy
        self.pending_count = 0


class TestFlushControllerWindows:
    def test_steady_deadline_traffic_settles_without_oscillation(self):
        policy = FlushPolicy()  # 32 / 8192
        channel = _FakeChannel(policy)
        controller = FlushController(1, seed=0)
        now = 0
        for _ in range(16):
            channel.pending_count = 1
            controller.observe_enqueue(channel, _Job(b"x" * 160), now)
            channel.pending_count = 0
            controller.observe_flush(channel, "deadline", 1, now + policy.flush_deadline)
            now += 40_000
        assert len(controller.trace) >= 10
        # One retarget toward same-cycle flushing, then holds forever.
        assert policy.flush_deadline == 0
        assert controller.adjustments == 1
        assert controller.settled(3)
        causes = [d.cause for d in controller.trace]
        assert causes.count("deadline:retarget") == 1
        assert policy.coalesce_limit == 32  # width never narrows

    def test_saturated_windows_widen_to_cap(self):
        policy = FlushPolicy(coalesce_limit=32, flush_deadline=None)
        channel = _FakeChannel(policy)
        controller = FlushController(2, seed=0)
        now = 0
        for _ in range(4):
            for _ in range(3):
                channel.pending_count = 4 * policy.coalesce_limit
                controller.observe_flush(
                    channel, "size", policy.coalesce_limit, now
                )
                now += 4000
        assert policy.coalesce_limit == CONFIG.max_coalesce
        widens = [d for d in controller.trace if d.cause == "widen:saturated"]
        assert len(widens) == 2  # 32 -> 64 -> 128
        # The trace records knobs before and after every decision.
        assert widens[0].coalesce_before == 32
        assert widens[0].coalesce_after == 64

    def test_trace_dicts_are_json_safe(self):
        import json

        policy = FlushPolicy()
        channel = _FakeChannel(policy)
        controller = FlushController(3, seed=5)
        channel.pending_count = 1
        controller.observe_enqueue(channel, _Job(b"y" * 64, priority=0), 0)
        controller.observe_enqueue(channel, _Job(b"y" * 64), 9000)
        assert len(controller.trace) == 1
        entry = json.loads(json.dumps(controller.trace_dicts()))[0]
        assert entry["cause"] == "hold:steady"
        assert entry["jobs"] == 1
        assert entry["class_mix"] == {"0": 1}
        assert entry["coalesce_before"] == entry["coalesce_after"] == 32


def _steady_configs(packets=10, channels=2):
    return tuple(
        ChannelConfig(
            RadioStandard.WIFI,
            bytes([index] * 16),
            TrafficPattern.CBR,
            packets=packets,
        )
        for index in range(channels)
    )


def _saturating_configs(packets=96, channels=2):
    return tuple(
        ChannelConfig(
            RadioStandard.SATCOM,
            bytes([index] * 32),
            TrafficPattern.SATURATING,
            packets=packets,
        )
        for index in range(channels)
    )


def _run(configs, seed=11, backend=None, autotune=None, policy=None):
    platform = SdrPlatform(core_count=4, seed=seed)
    report = platform.run_workload(
        WorkloadSpec(
            configs=configs,
            dataplane="batched",
            flush_policy=policy,
            backend=backend,
            autotune=autotune,
        )
    )
    digest = hashlib.sha256()
    for key in sorted(
        platform.comm.completed,
        key=lambda k: (
            platform.comm.completed[k].channel_id,
            platform.comm.completed[k].sequence,
        ),
    ):
        transfer = platform.comm.completed[key]
        digest.update(transfer.payload)
        digest.update(transfer.tag or b"")
    return report, digest.hexdigest()


class TestWorkloadIntegration:
    def test_steady_profile_traces_settle_and_reproduce(self):
        report, _ = _run(_steady_configs(), autotune=True)
        assert report.autotune_traces
        for trace in report.autotune_traces.values():
            assert len(trace) >= 5
            changed = [
                entry for entry in trace
                if entry["coalesce_before"] != entry["coalesce_after"]
                or entry["deadline_before"] != entry["deadline_after"]
            ]
            # Every change lands in the first windows; the tail holds.
            tail = trace[3:]
            assert all(
                entry["coalesce_before"] == entry["coalesce_after"]
                and entry["deadline_before"] == entry["deadline_after"]
                for entry in tail
            )
            assert changed, "steady CBR should retarget the deadline once"
        repeat, _ = _run(_steady_configs(), autotune=True)
        assert repeat.autotune_traces == report.autotune_traces

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_traces_identical_across_backends(self, backend):
        inline_report, inline_digest = _run(_steady_configs(), autotune=True)
        pooled_report, pooled_digest = _run(
            _steady_configs(), backend=backend, autotune=True
        )
        assert pooled_report.autotune_traces == inline_report.autotune_traces
        assert pooled_report.autotune_adjustments == (
            inline_report.autotune_adjustments
        )
        assert pooled_digest == inline_digest
        assert pooled_report.total_cycles == inline_report.total_cycles

    def test_auto_matches_static_bytes_and_never_trails_default(self):
        static_report, static_digest = _run(
            _saturating_configs(), policy=FlushPolicy()
        )
        auto_report, auto_digest = _run(_saturating_configs(), autotune=True)
        assert auto_digest == static_digest
        assert auto_report.payload_bytes == static_report.payload_bytes
        assert auto_report.total_cycles <= static_report.total_cycles

    def test_saturating_profile_widens(self):
        report, _ = _run(_saturating_configs(), autotune=True)
        assert report.autotune_adjustments >= 1
        causes = [
            entry["cause"]
            for trace in report.autotune_traces.values()
            for entry in trace
        ]
        assert "widen:saturated" in causes

    def test_fixed_policy_attaches_no_controller(self):
        report, _ = _run(_steady_configs(), policy=FlushPolicy())
        assert report.autotune_traces == {}
        assert report.autotune_adjustments == 0

    def test_advisor_fields_land_in_report(self):
        report, _ = _run(
            _steady_configs(),
            autotune=AutotuneConfig(advise_backend=True, cpu_count=1),
        )
        assert report.autotune_backend == "inline"
        assert report.autotune_policy == "inline-small"
        assert report.autotune_pipeline_depth == 1


class TestBackendAdvisor:
    def test_single_cpu_always_inline(self):
        profile = TrafficProfile(
            channels=8, total_packets=10 ** 6, mean_packet_bytes=2048.0,
            sustained_fraction=1.0, control_fraction=0.0,
        )
        advice = advise_backend(profile, cpu_count=1)
        assert advice.backend == "inline"
        assert advice.pipeline_depth == 1

    def test_sustained_bulk_on_big_host_picks_arena(self):
        profile = TrafficProfile(
            channels=8, total_packets=10 ** 6, mean_packet_bytes=2048.0,
            sustained_fraction=1.0, control_fraction=0.0,
        )
        advice = advise_backend(profile, cpu_count=8)
        assert advice.backend == "process-arena"
        assert advice.pipeline_depth == 4
        assert dict(advice.scores)["process-arena-bulk"] == max(
            score for _, score in advice.scores
        )

    def test_small_workload_stays_inline_anywhere(self):
        profile = TrafficProfile(
            channels=1, total_packets=4, mean_packet_bytes=160.0,
            sustained_fraction=0.0, control_fraction=1.0,
        )
        assert advise_backend(profile, cpu_count=16).backend == "inline"

    def test_deterministic_given_profile_and_cpus(self):
        profile = _traffic_profile(_saturating_configs())
        assert profile.sustained_fraction == 1.0
        assert profile.mean_packet_bytes == 2048.0
        first = advise_backend(profile, cpu_count=4)
        assert all(
            advise_backend(profile, cpu_count=4) == first for _ in range(3)
        )
