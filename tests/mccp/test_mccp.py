"""MCCP top level: protocol, key memory/scheduler, channels, requests."""

import pytest

from repro import Algorithm, CommController, Direction, Mccp, Packet, Simulator
from repro.errors import ChannelError, KeyStoreError, NoResourceError
from repro.mccp.instructions import (
    CloseInstr,
    DecryptInstr,
    EncryptInstr,
    OpenInstr,
    RetrieveDataInstr,
    ReturnCode,
    TransferDoneInstr,
    decode_instruction,
    encode_instruction,
)
from repro.mccp.key_memory import KeyMemory
from repro.mccp.key_scheduler import KeyScheduler
from repro.core.key_cache import KeyCache
from repro.crypto import gcm_decrypt
from repro.radio import format_gcm
from repro.unit.timing import DEFAULT_TIMING


# -- instruction encoding ----------------------------------------------------------

@pytest.mark.parametrize(
    "instr",
    [
        OpenInstr(Algorithm.GCM, 3),
        CloseInstr(7),
        EncryptInstr(2, 4, 128),
        DecryptInstr(1, 0, 64),
        RetrieveDataInstr(),
        TransferDoneInstr(9),
    ],
    ids=lambda i: type(i).__name__,
)
def test_instruction_roundtrip(instr):
    assert decode_instruction(encode_instruction(instr)) == instr


def test_decode_rejects_bad_words():
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError):
        decode_instruction(0xF << 28)
    with pytest.raises(ProtocolError):
        decode_instruction(1 << 33)


# -- key memory -----------------------------------------------------------------------

def test_key_memory_write_protection_and_reads():
    km = KeyMemory(slots=4)
    km.load_key(0, bytes(16))
    assert km.has_key(0) and 0 in km
    assert km.key_bits(0) == 128
    assert km.fetch_for_scheduler(0) == bytes(16)
    assert km.read_counts[0] == 1
    km.seal()
    with pytest.raises(KeyStoreError):
        km.load_key(1, bytes(16))
    with pytest.raises(KeyStoreError):
        km.fetch_for_scheduler(3)


def test_key_memory_validation():
    km = KeyMemory(slots=2)
    with pytest.raises(KeyStoreError):
        km.load_key(5, bytes(16))
    with pytest.raises(KeyStoreError):
        km.load_key(0, bytes(15))
    assert "Key" in repr(km) and "00" not in repr(km)  # never leak bytes


def test_key_scheduler_charges_cycles_and_memoises():
    sim = Simulator()
    km = KeyMemory()
    km.load_key(0, bytes(32))
    ks = KeyScheduler(sim, km, DEFAULT_TIMING)
    cache = KeyCache()
    done = ks.load(0, cache)
    sim.run_until_event(done)
    # 15 round keys x 4 words x 4 cycles.
    assert sim.now == ks.schedule_cycles(256) == 15 * 4 * 4
    assert cache.key_bits == 256
    assert ks.expansions == 1
    ks.load_sync(0, KeyCache())
    assert ks.expansions == 1  # memoised


# -- device protocol --------------------------------------------------------------------

def make_device():
    sim = Simulator()
    mccp = Mccp(sim, core_count=2)
    mccp.load_session_key(0, bytes(range(16)))
    return sim, mccp


def test_open_close_protocol():
    sim, mccp = make_device()
    code, chan_id = mccp.execute_instruction(OpenInstr(Algorithm.GCM, 0))
    assert code is ReturnCode.OK
    code, _ = mccp.execute_instruction(CloseInstr(chan_id))
    assert code is ReturnCode.OK
    code, _ = mccp.execute_instruction(CloseInstr(99))
    assert code is ReturnCode.UNKNOWN_CHANNEL
    assert mccp.return_register & 0xF == int(ReturnCode.UNKNOWN_CHANNEL)


def test_retrieve_with_nothing_pending():
    sim, mccp = make_device()
    code, _ = mccp.execute_instruction(RetrieveDataInstr())
    assert code is ReturnCode.NOT_READY


def test_no_resource_when_all_cores_busy(rb):
    sim, mccp = make_device()
    chan = mccp.open_channel(Algorithm.GCM, 0)
    task = format_gcm(128, rb(12), b"", rb(64), Direction.ENCRYPT)
    for core in mccp.cores:
        pass
    # Occupy both cores.
    mccp.submit(chan.channel_id, [task])
    task2 = format_gcm(128, rb(12), b"", rb(64), Direction.ENCRYPT)
    mccp.submit(chan.channel_id, [task2])
    with pytest.raises(NoResourceError):
        mccp.submit(chan.channel_id, [task])
    assert mccp.idle_cores == 0
    assert mccp.utilisation() == 1.0


def test_close_with_inflight_request_refused(rb):
    sim, mccp = make_device()
    chan = mccp.open_channel(Algorithm.GCM, 0)
    task = format_gcm(128, rb(12), b"", rb(32), Direction.ENCRYPT)
    comm = CommController(sim, mccp)
    ev = sim.event("go")

    def proc():
        transfer = yield from comm.process_packet(chan, Packet(0, b"", rb(32)))
        ev.trigger(transfer)

    sim.add_process(proc())
    with pytest.raises(ChannelError):
        # Submit happens after the scheduler-overhead delay; run a bit.
        sim.run(until=DEFAULT_TIMING.scheduler_overhead_cycles + 1)
        mccp.close_channel(chan.channel_id)
    sim.run_until_event(ev)
    mccp.close_channel(chan.channel_id)


def test_full_device_roundtrip_via_gold(rb):
    sim, mccp = make_device()
    chan = mccp.open_channel(Algorithm.GCM, 0)
    comm = CommController(sim, mccp)
    payload = rb(500)
    header = rb(9)
    secured = comm.secure_packet_sync(chan, Packet(0, header, payload))
    nonce = (1).to_bytes(12, "big")
    assert gcm_decrypt(bytes(range(16)), nonce, secured.ciphertext, secured.tag, header) == payload
    assert chan.packets_processed == 1


def test_decrypt_auth_fail_path_reports_and_purges(rb):
    sim, mccp = make_device()
    chan = mccp.open_channel(Algorithm.GCM, 0)
    comm = CommController(sim, mccp)
    ct = rb(64)
    ev = sim.event("done")

    def proc():
        transfer = yield from comm.process_packet(
            chan, Packet(0, b"", ct), Direction.DECRYPT,
            nonce=rb(12), tag=bytes(16),
        )
        ev.trigger(transfer)

    sim.add_process(proc())
    transfer = sim.run_until_event(ev, limit=10_000_000)
    assert not transfer.ok
    assert comm.auth_failures == 1
    assert chan.auth_failures == 1
