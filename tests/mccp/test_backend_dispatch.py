"""Backend plumbing through the MCCP batched submission path.

dispatch_jobs/flush_channel/flush_batches must produce identical
results and result ordering whichever execution backend carries the
sweeps — including the thread backend's concurrent per-channel drain
in flush_batches and the mixed seal+open single-pass dispatch.
"""

import random

import pytest

from repro.core.params import Algorithm, Direction
from repro.crypto.fast.exec import ProcessPoolBackend, ThreadPoolBackend
from repro.crypto.modes.gcm import gcm_encrypt
from repro.mccp.channel import PacketJob
from repro.mccp.mccp import Mccp
from repro.sim.kernel import Simulator

KEY = bytes(range(16))


@pytest.fixture(scope="module")
def thread_backend():
    backend = ThreadPoolBackend(workers=3)
    yield backend
    backend.close()


@pytest.fixture(scope="module")
def process_backend():
    backend = ProcessPoolBackend(workers=2)
    yield backend
    backend.close()


@pytest.fixture(params=["thread", "process"])
def pooled_backend(request, thread_backend, process_backend):
    return thread_backend if request.param == "thread" else process_backend


def _device(backend=None):
    device = Mccp(Simulator(), backend=backend)
    device.load_session_key(1, KEY)
    return device


def _enqueue_mixed(device, channel, count=24, seed=0xD15):
    """Interleaved ENCRYPT/DECRYPT traffic; returns expected payloads."""
    rng = random.Random(seed)
    expected = []
    for index in range(count):
        nonce = (index + 1).to_bytes(12, "big")
        payload = rng.randbytes(rng.choice((0, 33, 256, 2048)))
        if index % 3 == 2:
            ciphertext, tag = gcm_encrypt(KEY, nonce, payload, b"", 16, True)
            forged = index % 6 == 5
            device.enqueue_packet(
                channel.channel_id,
                ciphertext,
                direction=Direction.DECRYPT,
                nonce=nonce,
                tag=bytes(16) if forged else tag,
            )
            expected.append((False, b"") if forged else (True, payload))
        else:
            device.enqueue_packet(channel.channel_id, payload, nonce=nonce)
            expected.append(
                (True, gcm_encrypt(KEY, nonce, payload, b"", 16, True))
            )
    return expected


def _flatten(results):
    return [(r.ok, r.payload, r.tag) for r in results]


def test_mixed_direction_dispatch_matches_inline(pooled_backend):
    inline_device = _device()
    channel = inline_device.open_channel(Algorithm.GCM, 1)
    _enqueue_mixed(inline_device, channel)
    inline = _flatten(inline_device.flush_channel(channel.channel_id))

    device = _device(backend=pooled_backend)
    channel = device.open_channel(Algorithm.GCM, 1)
    expected = _enqueue_mixed(device, channel)
    results = device.flush_channel(channel.channel_id)
    assert _flatten(results) == inline
    for (ok, payload), result in zip(expected, results):
        assert result.ok is ok
        if not ok:
            assert result.payload == b""
        elif isinstance(payload, tuple):
            assert (result.payload, result.tag) == payload
        else:
            assert result.payload == payload


def test_flush_batches_thread_overlap_matches_sequential(thread_backend):
    def build(backend=None):
        device = _device(backend=backend)
        channels = [
            device.open_channel(Algorithm.GCM, 1),
            device.open_channel(Algorithm.CCM, 1, tag_length=8),
            device.open_channel(Algorithm.GCM, 1),
        ]
        rng = random.Random(0xF1)
        for channel in channels:
            nbytes = 13 if channel.algorithm is Algorithm.CCM else 12
            for index in range(10):
                device.enqueue_packet(
                    channel.channel_id,
                    rng.randbytes(rng.choice((16, 300, 2048))),
                    nonce=(index + 1).to_bytes(nbytes, "big"),
                )
        return device, channels

    sequential_device, _ = build()
    sequential = {
        cid: _flatten(results)
        for cid, results in sequential_device.flush_batches().items()
    }
    threaded_device, channels = build(backend=thread_backend)
    threaded = {
        cid: _flatten(results)
        for cid, results in threaded_device.flush_batches().items()
    }
    assert threaded == sequential
    assert list(threaded) == sorted(threaded)
    for channel in channels:
        assert channel.pending_count == 0
        assert channel.stats["batches"] >= 1
    assert threaded_device.flush_batches() == {}


def test_device_default_backend_used_by_dispatch(thread_backend):
    """Mccp(backend=...) applies when no per-call backend is given."""
    device = _device(backend=thread_backend)
    channel = device.open_channel(Algorithm.GCM, 1)
    rng = random.Random(0xF2)
    payloads = [rng.randbytes(64) for _ in range(12)]
    jobs = [
        PacketJob(
            direction=Direction.ENCRYPT,
            nonce=(i + 1).to_bytes(12, "big"),
            data=payload,
            sequence=i,
        )
        for i, payload in enumerate(payloads)
    ]
    for job in jobs:
        device.enqueue_job(channel.channel_id, job)
    results = device.dispatch_jobs(channel.channel_id, channel.take_batch())
    for i, (payload, result) in enumerate(zip(payloads, results)):
        expected = gcm_encrypt(KEY, (i + 1).to_bytes(12, "big"), payload, b"", 16, True)
        assert (result.payload, result.tag) == expected
        assert jobs[i].result is result
