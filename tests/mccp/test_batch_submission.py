"""The MCCP batched submission path (enqueue -> coalesce -> flush).

The channel layer's batch path must produce exactly the reference
crypto, honour the per-channel coalescing knob, keep per-packet auth
failures isolated, and account statistics the way the per-packet path
does.
"""

import random

import pytest

from repro.core.params import Algorithm, Direction
from repro.crypto.modes.ccm import ccm_encrypt
from repro.crypto.modes.gcm import gcm_encrypt
from repro.crypto.modes.gmac import gmac
from repro.errors import ChannelError, ProtocolError
from repro.mccp.mccp import Mccp
from repro.sim.kernel import Simulator


@pytest.fixture
def mccp():
    device = Mccp(Simulator())
    device.load_session_key(1, bytes(range(16)))
    return device


KEY = bytes(range(16))


def _nonce(index: int, nbytes: int) -> bytes:
    return (index + 1).to_bytes(nbytes, "big")


def test_gcm_batch_matches_reference_and_coalesces(mccp):
    channel = mccp.open_channel(Algorithm.GCM, 1)
    channel.coalesce_limit = 4
    rng = random.Random(0xA0)
    payloads = [rng.randbytes(rng.choice((0, 60, 300, 2048))) for _ in range(11)]
    for index, payload in enumerate(payloads):
        depth = mccp.enqueue_packet(
            channel.channel_id, payload, b"hdr", nonce=_nonce(index, 12)
        )
        assert depth == index + 1
    assert channel.pending_count == 11
    results = mccp.flush_channel(channel.channel_id)
    assert channel.pending_count == 0
    assert channel.stats["batches"] == 3  # 4 + 4 + 3 under the knob
    for index, (payload, result) in enumerate(zip(payloads, results)):
        expected = gcm_encrypt(KEY, _nonce(index, 12), payload, b"hdr", 16, False)
        assert result.ok and (result.payload, result.tag) == expected
    assert channel.packets_processed == 11
    assert channel.bytes_processed == sum(len(p) for p in payloads)


def test_decrypt_batch_isolates_tampered_packet(mccp):
    channel = mccp.open_channel(Algorithm.CCM, 1, tag_length=8)
    rng = random.Random(0xA1)
    payloads = [rng.randbytes(rng.randrange(1, 400)) for _ in range(9)]
    for index, payload in enumerate(payloads):
        mccp.enqueue_packet(channel.channel_id, payload, nonce=_nonce(index, 13))
    sealed = mccp.flush_channel(channel.channel_id)
    for index, result in enumerate(sealed):
        mccp.enqueue_packet(
            channel.channel_id,
            result.payload,
            direction=Direction.DECRYPT,
            nonce=_nonce(index, 13),
            tag=bytes(8) if index == 4 else result.tag,
        )
    opened = mccp.flush_channel(channel.channel_id)
    for index, (payload, result) in enumerate(zip(payloads, opened)):
        if index == 4:
            assert not result.ok and result.payload == b""
        else:
            assert result.ok and result.payload == payload
    assert channel.auth_failures == 1


def test_mixed_direction_batch_keeps_submission_order(mccp):
    channel = mccp.open_channel(Algorithm.GCM, 1)
    plaintext = b"interleaved"
    ct, tag = gcm_encrypt(KEY, _nonce(100, 12), plaintext, b"", 16, True)
    mccp.enqueue_packet(channel.channel_id, b"first", nonce=_nonce(0, 12))
    mccp.enqueue_packet(
        channel.channel_id,
        ct,
        direction=Direction.DECRYPT,
        nonce=_nonce(100, 12),
        tag=tag,
    )
    mccp.enqueue_packet(channel.channel_id, b"third", nonce=_nonce(2, 12))
    first, second, third = mccp.flush_channel(channel.channel_id)
    assert (first.payload, first.tag) == gcm_encrypt(
        KEY, _nonce(0, 12), b"first", b"", 16, False
    )
    assert second.ok and second.payload == plaintext and second.tag is None
    assert (third.payload, third.tag) == gcm_encrypt(
        KEY, _nonce(2, 12), b"third", b"", 16, False
    )


def test_gmac_rides_gcm_with_empty_payload(mccp):
    channel = mccp.open_channel(Algorithm.GCM, 1)
    aad = b"authenticated-only data"
    mccp.enqueue_packet(channel.channel_id, b"", aad, nonce=_nonce(0, 12))
    (result,) = mccp.flush_channel(channel.channel_id)
    assert result.payload == b""
    assert result.tag == gmac(KEY, _nonce(0, 12), aad)


def test_flush_batches_covers_all_pending_channels(mccp):
    gcm_channel = mccp.open_channel(Algorithm.GCM, 1)
    ccm_channel = mccp.open_channel(Algorithm.CCM, 1, tag_length=8)
    mccp.enqueue_packet(gcm_channel.channel_id, b"a", nonce=_nonce(0, 12))
    mccp.enqueue_packet(ccm_channel.channel_id, b"b", nonce=_nonce(0, 13))
    results = mccp.flush_batches()
    assert set(results) == {gcm_channel.channel_id, ccm_channel.channel_id}
    assert results[gcm_channel.channel_id][0].tag == gcm_encrypt(
        KEY, _nonce(0, 12), b"a", b"", 16, False
    )[1]
    assert results[ccm_channel.channel_id][0].tag == ccm_encrypt(
        KEY, _nonce(0, 13), b"b", b"", 8, False
    )[1]
    assert mccp.flush_batches() == {}


def test_enqueue_validation(mccp):
    channel = mccp.open_channel(Algorithm.GCM, 1)
    with pytest.raises(ChannelError):
        mccp.enqueue_packet(99, b"x", nonce=bytes(12))
    with pytest.raises(ProtocolError):
        mccp.enqueue_packet(channel.channel_id, b"x")  # no nonce
    with pytest.raises(ProtocolError):
        mccp.enqueue_packet(
            channel.channel_id, b"x", direction=Direction.DECRYPT, nonce=bytes(12)
        )  # no tag
    ctr_channel = mccp.open_channel(Algorithm.CTR, 1)
    with pytest.raises(ProtocolError):
        mccp.enqueue_packet(ctr_channel.channel_id, b"x", nonce=bytes(16))


def test_enqueue_rejects_truncated_decrypt_tag(mccp):
    """A forger must not get to pick a shorter (weaker) tag length."""
    channel = mccp.open_channel(Algorithm.GCM, 1)
    ciphertext, tag = gcm_encrypt(KEY, bytes(12), b"payload", b"", 16, False)
    with pytest.raises(ProtocolError, match="16-byte tags, got 4"):
        mccp.enqueue_packet(
            channel.channel_id,
            ciphertext,
            direction=Direction.DECRYPT,
            nonce=bytes(12),
            tag=tag[:4],  # 4 is itself a valid GCM tag length
        )
    assert channel.pending_count == 0


def test_enqueue_rejects_invalid_gcm_channel_tag_length(mccp):
    """open_channel accepts any tag_length; the batch path must refuse
    it at enqueue rather than lose the batch to a flush-time TagError."""
    channel = mccp.open_channel(Algorithm.GCM, 1, tag_length=5)
    with pytest.raises(ProtocolError, match="tag length 5"):
        mccp.enqueue_packet(channel.channel_id, b"x", nonce=bytes(12))
    assert channel.pending_count == 0


def test_enqueue_rejects_malformed_ccm_packets_before_queueing(mccp):
    """Bad sizes must surface at enqueue; a flush-time error would drop
    the whole already-popped batch."""
    channel = mccp.open_channel(Algorithm.CCM, 1, tag_length=8)
    mccp.enqueue_packet(channel.channel_id, b"ok", nonce=_nonce(0, 13))
    with pytest.raises(Exception, match="[Nn]once"):
        mccp.enqueue_packet(channel.channel_id, b"x", nonce=bytes(16))
    with pytest.raises(Exception, match="payload"):
        # 13-byte nonce leaves a 2-byte length field: 64 KiB max payload.
        mccp.enqueue_packet(channel.channel_id, bytes(70000), nonce=_nonce(1, 13))
    assert channel.pending_count == 1  # rejected packets never queued
    results = mccp.flush_channel(channel.channel_id)
    assert len(results) == 1 and results[0].ok


def test_close_rejects_pending_batch_packets(mccp):
    channel = mccp.open_channel(Algorithm.GCM, 1)
    mccp.enqueue_packet(channel.channel_id, b"x", nonce=bytes(12))
    with pytest.raises(ChannelError, match="queued for batched dispatch"):
        mccp.close_channel(channel.channel_id)
    mccp.flush_channel(channel.channel_id)
    mccp.close_channel(channel.channel_id)


def test_enqueue_job_and_dispatch_jobs_stamp_results(mccp):
    """The job-level API underneath enqueue_packet/flush_channel."""
    from repro.mccp.channel import PacketJob

    channel = mccp.open_channel(Algorithm.GCM, 1)
    jobs = [
        PacketJob(
            direction=Direction.ENCRYPT,
            nonce=_nonce(i, 12),
            data=bytes([i]) * 20,
            sequence=i,
        )
        for i in range(3)
    ]
    for job in jobs:
        mccp.enqueue_job(channel.channel_id, job)
        assert job.channel_id == channel.channel_id
    batch = channel.take_batch()
    results = mccp.dispatch_jobs(channel.channel_id, batch)
    for job, result in zip(jobs, results):
        assert job.result is result and result.ok
        expected = gcm_encrypt(KEY, job.nonce, job.data, b"", 16, False)
        assert (result.payload, result.tag) == expected
    assert channel.stats["batches"] == 1
    assert channel.stats["queue_peak"] == 3


def test_coalesce_limit_property_tracks_flush_policy(mccp):
    channel = mccp.open_channel(Algorithm.GCM, 1)
    channel.coalesce_limit = 4
    assert channel.flush_policy.coalesce_limit == 4
    channel.flush_policy.coalesce_limit = 9
    assert channel.coalesce_limit == 9
    channel.coalesce_limit = 0  # documented "dispatch immediately" floor
    assert channel.coalesce_limit == 1
    # The setter routes through FlushPolicy validation: a negative
    # width raises the constructor's pointed error instead of silently
    # clamping, and the rest of the policy survives the round-trip.
    channel.flush_policy.flush_deadline = 123
    with pytest.raises(ValueError, match="coalesce_limit must be >= 0"):
        channel.coalesce_limit = -3
    assert channel.coalesce_limit == 1
    assert channel.flush_policy.flush_deadline == 123
