"""The pipelined dataplane: overlap without observable divergence.

The determinism contract under test: ``dataplane="pipelined"`` may
complete batches out of order in wall-clock, but every observable —
payload bytes, tags, ok flags, per-channel fan-out order, completion
cycle stamps, latency accounting, total simulated time — is
byte-identical to the synchronous batched dataplane, across backends,
adversarial completion orders (a scripted-latency backend that finishes
later batches first) and injected faults (retries, degradation,
quarantine, dead letters all happen at reap time).  The
:class:`WorkloadSpec` consolidation and the legacy-kwarg shim ride
along.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import replace

import pytest

from repro.core.params import Algorithm
from repro.crypto.fast.exec import (
    ProcessPoolBackend,
    ResiliencePolicy,
    ThreadPoolBackend,
)
from repro.mccp.channel import FlushPolicy
from repro.mccp.mccp import Mccp
from repro.radio.comm_controller import CommController
from repro.radio.packet import Packet
from repro.radio.sdr_platform import ChannelConfig, SdrPlatform, WorkloadSpec
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern
from repro.resilience import FaultPlan, ScriptedFault, set_fault_plan
from repro.sim.kernel import Simulator

FLUSH = FlushPolicy(coalesce_limit=8, flush_deadline=8192)
FAST = ResiliencePolicy(max_retries=2, backoff_base=0.0, backoff_cap=0.0)
KEY = bytes(range(16))


def _configs(packets=24, channels=3):
    standards = (RadioStandard.WIFI, RadioStandard.SATCOM, RadioStandard.WIMAX)
    configs = []
    for index in range(channels):
        standard = standards[index % len(standards)]
        key = bytes([index] * (32 if standard is RadioStandard.SATCOM else 16))
        configs.append(
            ChannelConfig(
                standard,
                key,
                TrafficPattern.SATURATING,
                packets=packets,
                rx_fraction=0.3,
                corrupt_rate=0.1,
            )
        )
    return configs


def _run(spec, plan=None, seed=17):
    """One workload run -> (platform, report, transfers, order)."""
    previous = set_fault_plan(plan)
    try:
        platform = SdrPlatform(core_count=4, seed=seed)
        report = platform.run_workload(spec)
        transfers = {
            (t.channel_id, t.sequence): (t.payload, t.tag, t.ok)
            for t in platform.comm.completed.values()
        }
        order = {}
        for t in platform.comm.completed.values():
            order.setdefault(t.channel_id, []).append(t.sequence)
        return platform, report, transfers, order
    finally:
        set_fault_plan(previous)


def _spec(dataplane, backend=None, depth=2, configs=None):
    return WorkloadSpec(
        configs=tuple(configs or _configs()),
        dataplane=dataplane,
        flush_policy=FLUSH,
        backend=backend,
        pipeline_depth=depth,
    )


def _stamps(platform):
    return {
        (t.channel_id, t.sequence): (t.job.completed_cycle, t.download_done_cycle)
        for t in platform.comm.completed.values()
        if t.job is not None
    }


# -- byte identity vs the synchronous dataplane -------------------------------


@pytest.mark.parametrize("backend", [None, "thread"])
@pytest.mark.parametrize("depth", [1, 2, 4])
def test_pipelined_identical_to_batched(backend, depth):
    base_platform, base_report, baseline, base_order = _run(
        _spec("batched", backend=backend)
    )
    platform, report, piped, order = _run(
        _spec("pipelined", backend=backend, depth=depth)
    )
    assert piped == baseline
    assert order == base_order
    assert report.total_cycles == base_report.total_cycles
    assert sorted(report.latencies) == sorted(base_report.latencies)
    assert _stamps(platform) == _stamps(base_platform)
    assert report.dataplane == "pipelined"
    assert base_report.dataplane == "batched"
    assert base_report.pipeline_in_flight_peak == 0
    assert report.pipeline_in_flight_peak >= 1


def test_pipelined_identical_on_process_backend():
    backend = ProcessPoolBackend(2)
    try:
        _, base_report, baseline, base_order = _run(
            _spec("batched", backend=backend)
        )
        _, report, piped, order = _run(_spec("pipelined", backend=backend))
        assert piped == baseline
        assert order == base_order
        assert report.total_cycles == base_report.total_cycles
    finally:
        backend.close()


@pytest.mark.parametrize("dataplane", ["batched", "pipelined"])
def test_arena_and_pickle_dataplanes_byte_identical(dataplane):
    """The zero-copy arena is a transport change only: every backend
    spec delivers the same payload bytes, tags and per-channel order
    as inline on both dataplanes."""
    _, _, baseline, base_order = _run(_spec(dataplane, backend="inline"))
    for spec in ("process-arena:2", "process-pickle:2"):
        _, _, transfers, order = _run(_spec(dataplane, backend=spec))
        assert transfers == baseline, spec
        assert order == base_order, spec


# -- adversarial completion order ---------------------------------------------


class ScriptedLatencyBackend(ThreadPoolBackend):
    """Thread backend whose Nth launched batch sleeps ``delays[N]``.

    Later submissions with shorter delays finish first in wall-clock —
    the adversarial completion order the per-channel FIFO reap must
    mask.  ``launch_log`` records the scripted delay each launched
    batch got, proving the schedule actually applied.
    """

    def __init__(self, delays, workers=4):
        super().__init__(workers)
        self._delays = list(delays)
        self.launch_log = []

    def _launch(self, calls):
        delay = self._delays.pop(0) if self._delays else 0.0
        self.launch_log.append(delay)
        if delay:
            calls = [(_SlowCall(delay, fn), args) for fn, args in calls]
        return super()._launch(calls)


class _SlowCall:
    def __init__(self, delay, fn):
        self.delay = delay
        self.fn = fn

    def __call__(self, *args):
        time.sleep(self.delay)
        return self.fn(*args)


def test_out_of_order_completion_fans_out_in_order():
    """Batch 0 slow, batch 1 instant: wall-clock finishes out of order,
    fan-out must not."""
    configs = _configs(packets=40, channels=1)
    _, _, baseline, base_order = _run(
        _spec("batched", backend="thread", configs=configs)
    )
    scripted = ScriptedLatencyBackend([0.2, 0.0, 0.1, 0.0, 0.05])
    try:
        _, report, piped, order = _run(
            _spec("pipelined", backend=scripted, depth=4, configs=configs)
        )
    finally:
        scripted.close()
    assert scripted.launch_log[:2] == [0.2, 0.0]  # schedule applied
    assert piped == baseline
    assert order == base_order
    for channel_id, sequence_list in order.items():
        assert sequence_list == sorted(sequence_list)
    assert report.pipeline_in_flight_peak >= 2


# -- faults through the pipelined dataplane -----------------------------------


class TestPipelinedResilience:
    def test_batch_error_quarantines_survivors_identical(self):
        _, _, baseline, base_order = _run(_spec("batched"))
        plan = FaultPlan(seed=5, rates={"batch_error": 0.2})
        platform, report, faulted, order = _run(_spec("pipelined"), plan=plan)
        assert set(faulted) == set(baseline)
        for key, (payload, tag, ok) in faulted.items():
            if ok:
                assert baseline[key] == (payload, tag, True)
        assert order == base_order
        assert report.quarantined > 0
        assert report.dead_lettered >= report.quarantined
        assert platform.comm.dead_letter

    def test_worker_crash_storm_degrades_and_completes(self, hang_guard):
        configs = [
            ChannelConfig(
                RadioStandard.WIFI,
                bytes(16),
                TrafficPattern.SATURATING,
                packets=64,
            )
        ]
        _, _, baseline, base_order = _run(
            _spec("batched", configs=configs)
        )
        plan = FaultPlan(scripted=(ScriptedFault("worker_crash", times=10**9),))
        backend = ProcessPoolBackend(2)
        backend.resilience = FAST
        try:
            with hang_guard(120.0):
                _, report, faulted, order = _run(
                    _spec("pipelined", backend=backend, configs=configs),
                    plan=plan,
                )
        finally:
            backend.close()
        assert faulted == baseline
        assert order == base_order
        assert report.degradations >= 1
        assert report.dead_lettered == 0


# -- flush_now as a pipeline barrier ------------------------------------------


def test_flush_now_reaps_all_in_flight():
    sim = Simulator()
    mccp = Mccp(sim)
    mccp.load_session_key(0, KEY)
    channel = mccp.open_channel(Algorithm.CCM, 0, tag_length=8)
    channel.flush_policy = FlushPolicy(coalesce_limit=8, flush_deadline=None)
    comm = CommController(sim, mccp)
    comm.pipelined = True
    comm.pipeline_depth = 2
    total = 32
    packets = [
        Packet(channel.channel_id, b"", bytes([i]) * 128, sequence=i)
        for i in range(total)
    ]
    observed = {}
    done = sim.event("barrier")

    def proc():
        for packet in packets:
            comm.submit_job(channel, packet)
        observed["before"] = len(comm.completed)
        observed["returned"] = yield from comm.flush_now(channel)
        done.trigger()

    sim.add_process(proc())
    sim.run_until_event(done)
    # Size drains left up to pipeline_depth batches in flight; the
    # barrier returned exactly those, and afterwards nothing dangles.
    assert observed["before"] < total
    returned_sequences = [t.sequence for t in observed["returned"]]
    assert returned_sequences == list(range(observed["before"], total))
    assert len(comm.completed) == total
    assert [t.sequence for t in comm.completed.values()] == list(range(total))
    assert channel.in_flight == 0
    assert not comm._inflight.get(channel.channel_id)


# -- WorkloadSpec and the legacy shim -----------------------------------------


class TestWorkloadSpec:
    def test_legacy_kwargs_warn_and_match_spec(self):
        configs = _configs(packets=12)
        platform = SdrPlatform(core_count=4, seed=17)
        with pytest.warns(DeprecationWarning, match="WorkloadSpec"):
            legacy = platform.run_workload(
                configs, dataplane="batched", flush_policy=FLUSH
            )
        platform2 = SdrPlatform(core_count=4, seed=17)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # spec path must not warn
            spec_report = platform2.run_workload(
                WorkloadSpec(
                    configs=tuple(configs),
                    dataplane="batched",
                    flush_policy=FLUSH,
                )
            )
        assert legacy.packets_done == spec_report.packets_done
        assert legacy.total_cycles == spec_report.total_cycles
        assert legacy.payload_bytes == spec_report.payload_bytes

    def test_spec_cannot_mix_with_legacy_kwargs(self):
        platform = SdrPlatform(core_count=4, seed=1)
        spec = WorkloadSpec(configs=tuple(_configs(packets=2)))
        with pytest.raises(TypeError):
            platform.run_workload(_configs(packets=2), spec=spec)
        with pytest.raises(TypeError):
            platform.run_workload(spec, spec=spec)
        with pytest.raises(TypeError):
            platform.run_workload(spec, dataplane="batched")

    def test_spec_validates_dataplane_and_depth(self):
        with pytest.raises(ValueError, match="unknown dataplane"):
            WorkloadSpec(dataplane="gpu")
        with pytest.raises(ValueError, match="pipeline_depth"):
            WorkloadSpec(pipeline_depth=0)
        spec = WorkloadSpec(dataplane="pipelined", pipeline_depth=3)
        assert replace(spec, dataplane="batched").pipeline_depth == 3

    def test_flush_policy_mode_validation(self):
        assert FlushPolicy(coalesce_limit=4, mode="fixed").mode == "fixed"
        # "auto" is a real mode since the adaptive controller shipped:
        # it constructs with the same knob validation as "fixed".
        auto = FlushPolicy(coalesce_limit=4, mode="auto")
        assert auto.mode == "auto"
        assert auto.coalesce_limit == 4
        with pytest.raises(ValueError, match="unknown FlushPolicy mode"):
            FlushPolicy(coalesce_limit=4, mode="turbo")
