"""Overload protection: bounded queues, admission control, SLA budgets.

The invariant under test (pinned again in CI by ``overload_sweep`` and
``benchmarks/gate_overload.py``): at sustained >= 4x overload on
bounded channels the workload still completes without unbounded queue
growth; admitted packets are byte-identical to the same packets run
unthrottled; the shed set reproduces across repeats, dataplanes and
execution backends; and shed packets are accounted only as shed —
never as auth failures or dead letters.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import BackpressureError
from repro.experiments.scenarios.overload import (
    _configs,
    _spec,
    _transfers,
    run_overload_cell,
)
from repro.core.params import Direction
from repro.mccp.channel import Channel, FlushPolicy, PacketJob
from repro.radio.admission import AdmissionPolicy
from repro.radio.sdr_platform import SdrPlatform, WorkloadSpec

CAPACITY = 4
PACKETS = 16
SEED = 9


def _run(spec, seed=SEED):
    platform = SdrPlatform(core_count=4, seed=seed)
    return platform, platform.run_workload(spec)


def _channel(**kwargs):
    from repro.core.params import Algorithm

    return Channel(
        channel_id=kwargs.pop("channel_id", 3),
        algorithm=Algorithm.GCM,
        key_id=0,
        key_bits=128,
        **kwargs,
    )


def _job(sequence=0):
    return PacketJob(
        direction=Direction.ENCRYPT,
        nonce=bytes(13),
        data=b"payload",
        sequence=sequence,
    )


class TestBoundedQueues:
    def test_enqueue_at_watermark_raises_typed_signal(self):
        channel = _channel(capacity=2)
        channel.enqueue(_job(0))
        channel.enqueue(_job(1))
        with pytest.raises(BackpressureError):
            channel.enqueue(_job(2))
        assert channel.under_pressure
        assert channel.stats["backpressure_signals"] == 1
        assert channel.pending_count == 2  # the refused job never queued

    def test_pressure_clears_at_the_low_watermark(self):
        channel = _channel(capacity=2, low_watermark=0)
        channel.enqueue(_job(0))
        channel.enqueue(_job(1))
        assert channel.under_pressure
        channel.take_batch()  # drains everything (coalesce default > 2)
        assert not channel.under_pressure

    def test_low_watermark_defaults_to_half_capacity(self):
        assert _channel(capacity=8).effective_low_watermark == 4
        assert (
            _channel(capacity=8, low_watermark=2).effective_low_watermark == 2
        )

    def test_bounded_run_without_admission_completes_via_retries(self):
        spec = replace(_spec(_configs("saturating", PACKETS), CAPACITY,
                             None, "batched"), admission=None)
        _, report = _run(spec)
        assert report.packets_done == 3 * PACKETS  # nothing shed
        assert report.shed == 0
        assert report.backpressure_retries > 0
        assert report.backpressure_signals > 0
        assert report.queue_peak() <= CAPACITY

    def test_queue_peak_never_exceeds_watermark(self):
        spec = _spec(_configs("saturating", PACKETS), CAPACITY,
                     None, "batched")
        _, report = _run(spec)
        assert 0 < report.queue_peak() <= CAPACITY


class TestSustainedOverload:
    def test_offered_load_is_at_least_4x_the_watermark(self):
        # The same storm on unbounded queues: the backlog the bounded
        # run must absorb grows to >= 4x the watermark it is held to.
        spec = _spec(_configs("saturating", 24), None, None, "batched")
        _, report = _run(spec)
        assert report.queue_peak() >= 4 * CAPACITY

    def test_cell_invariant_holds_and_sheds_bulk_first(self):
        # run_overload_cell hard-fails (ExperimentError) on any broken
        # invariant: queue growth, shed accounting, byte identity,
        # per-channel order, shed reproducibility, the SLA.
        metrics = run_overload_cell(
            "saturating", CAPACITY, None, SEED, packets=PACKETS
        )
        assert metrics["admitted"] + metrics["shed"] == metrics["offered"]
        assert metrics["shed"] > 0
        assert metrics["shed_control"] == 0
        assert metrics["shed_bulk"] >= metrics["shed_interactive"]
        assert metrics["sla_holds"] and metrics["bytes_identical"]


class TestShedDeterminism:
    def test_shed_set_reproduces_across_repeats_and_dataplanes(self):
        spec = _spec(_configs("saturating", PACKETS), CAPACITY,
                     None, "batched")
        _, first = _run(spec)
        _, again = _run(spec)
        _, piped = _run(replace(spec, dataplane="pipelined"))
        assert first.shed > 0
        assert first.shed_packets == again.shed_packets
        assert first.shed_packets == piped.shed_packets

    def test_shed_set_identical_across_execution_backends(self):
        spec = _spec(_configs("saturating", PACKETS), CAPACITY,
                     None, "batched")
        shed = {}
        for backend in ("inline", "thread:2"):
            _, report = _run(replace(spec, backend=backend))
            shed[backend] = report.shed_packets
        assert shed["inline"] == shed["thread:2"]
        assert len(shed["inline"]) > 0


class TestShedAccounting:
    def test_shed_is_its_own_budget(self):
        spec = _spec(_configs("saturating", PACKETS), CAPACITY,
                     None, "batched")
        _, report = _run(spec)
        assert report.shed > 0
        assert report.auth_failures == 0
        assert report.dead_lettered == 0
        assert report.packets_done + report.shed == 3 * PACKETS
        assert sum(report.shed_by_class.values()) == report.shed
        assert sum(report.shed_causes.values()) == report.shed
        assert len(report.shed_packets) == report.shed

    def test_admitted_packets_match_unthrottled_bytes(self):
        configs = _configs("saturating", PACKETS)
        base_platform, _ = _run(_spec(configs, None, None, "batched"))
        base_bytes, base_order = _transfers(base_platform)
        platform, report = _run(
            _spec(configs, CAPACITY, None, "batched")
        )
        got_bytes, got_order = _transfers(platform)
        shed = set(report.shed_packets)
        for key, payload_tag in got_bytes.items():
            assert payload_tag == base_bytes[key]
        for channel_id, base_seq in base_order.items():
            expected = [s for s in base_seq if (channel_id, s) not in shed]
            assert got_order.get(channel_id, []) == expected


class TestAdmissionPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"rate_per_kcycle": 0.0}, "rate_per_kcycle"),
            ({"burst": 0}, "burst"),
            ({"defer_cycles": 0}, "defer_cycles"),
            ({"max_defers": -1}, "max_defers"),
            (
                {"protect_priority": 2, "shed_first_priority": 2},
                "shed_first_priority",
            ),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            AdmissionPolicy(**kwargs)


class TestFlushPolicyValidation:
    def test_negative_coalesce_limit_rejected(self):
        with pytest.raises(ValueError, match="coalesce_limit must be >= 0"):
            FlushPolicy(coalesce_limit=-1)

    def test_negative_flush_deadline_rejected(self):
        with pytest.raises(
            ValueError, match="flush_deadline must be >= 0 or None"
        ):
            FlushPolicy(flush_deadline=-4096)

    def test_zero_coalesce_limit_still_clamps_to_one(self):
        # Documented floor ("dispatch immediately"), not an error.
        assert FlushPolicy(coalesce_limit=0).coalesce_limit == 1

    def test_none_deadline_still_allowed(self):
        assert FlushPolicy(flush_deadline=None).flush_deadline is None


class TestSpecValidation:
    def test_queue_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="queue_capacity"):
            WorkloadSpec(configs=(), queue_capacity=0)


class TestDeprecatedKwargsShim:
    """Satellite: the legacy kwargs shim composed with the pipelined
    dataplane on bounded (per-config capacity) channels."""

    def test_shim_warns_and_matches_the_spec_form_under_backpressure(self):
        configs = [
            replace(config, queue_capacity=CAPACITY)
            for config in _configs("saturating", PACKETS)
        ]
        platform = SdrPlatform(core_count=4, seed=SEED)
        with pytest.warns(DeprecationWarning, match="WorkloadSpec"):
            legacy = platform.run_workload(
                configs,
                dataplane="pipelined",
                flush_policy=FlushPolicy(coalesce_limit=4,
                                         flush_deadline=4096),
            )
        spec = WorkloadSpec(
            configs,
            dataplane="pipelined",
            flush_policy=FlushPolicy(coalesce_limit=4, flush_deadline=4096),
        )
        _, modern = _run(spec)
        # The shim run really was under backpressure, and the two forms
        # are the same workload.
        assert legacy.backpressure_signals > 0
        assert legacy.backpressure_retries > 0
        assert legacy.queue_peak() <= CAPACITY
        assert legacy.packets_done == modern.packets_done == 3 * PACKETS
        assert legacy.total_cycles == modern.total_cycles
        assert legacy.latencies == modern.latencies

    def test_spec_cannot_be_mixed_with_legacy_kwargs(self):
        platform = SdrPlatform(core_count=2, seed=SEED)
        spec = WorkloadSpec(configs=_configs("saturating", 4))
        with pytest.raises(TypeError, match="mixing spec="):
            platform.run_workload(spec, dataplane="batched")
