"""End-to-end batched dataplane: equivalence, flush policy, isolation.

The acceptance contract of the dataplane refactor: routing radio
traffic through the job-coalescing pipeline must produce *byte-
identical* secured packets to the packet-at-a-time core path — across
GCM/CCM channel mixes, ragged payloads and auth-failure injection —
while never touching the per-packet submit path, and the flush policy
(size threshold + sim-time idle deadline) must bound how long a queued
job can wait.
"""

import pytest

from repro.core.params import Algorithm, Direction
from repro.crypto.fast.bulk import ccm_seal, gcm_seal
from repro.mccp.channel import FlushPolicy
from repro.mccp.mccp import Mccp
from repro.radio.packet import Packet
from repro.radio.sdr_platform import ChannelConfig, SdrPlatform
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern
from repro.sim.kernel import Simulator

KEY = bytes(range(16))

#: Batchable-only mix (no CTR): GCM voice/satcom + CCM wifi/wimax.
_MIXED_STANDARDS = (
    RadioStandard.TACTICAL_VOICE,
    RadioStandard.WIFI,
    RadioStandard.SATCOM,
    RadioStandard.WIMAX,
)


def _mixed_configs(channels: int, packets: int):
    configs = []
    for index in range(channels):
        standard = _MIXED_STANDARDS[index % len(_MIXED_STANDARDS)]
        key = bytes(32) if standard is RadioStandard.SATCOM else bytes(16)
        configs.append(
            ChannelConfig(
                standard, key, TrafficPattern.SATURATING, packets=packets
            )
        )
    return configs


def _secured_bytes(platform):
    """(channel, sequence) -> (payload, tag) for every completion."""
    return {
        (t.channel_id, t.sequence): (t.payload, t.tag)
        for t in platform.comm.completed.values()
    }


def _run(configs, dataplane, seed=11, **kwargs):
    platform = SdrPlatform(core_count=4, seed=seed)
    report = platform.run_workload(configs, dataplane=dataplane, **kwargs)
    return platform, report


def _comm_setup(algorithm=Algorithm.GCM, tag_length=16, policy=None):
    from repro.radio.comm_controller import CommController

    sim = Simulator()
    mccp = Mccp(sim)
    mccp.load_session_key(0, KEY)
    channel = mccp.open_channel(algorithm, 0, tag_length=tag_length)
    if policy is not None:
        channel.flush_policy = policy
    comm = CommController(sim, mccp, seed=5)
    return sim, mccp, channel, comm


# -- byte equivalence against the cycle-accurate core path ---------------------


def test_batched_matches_core_path_across_channel_mix():
    """Same workload, both dataplanes: identical bytes and counters."""
    configs = _mixed_configs(channels=8, packets=8)
    cores_platform, cores_report = _run(configs, "cores")
    batched_platform, batched_report = _run(
        configs,
        "batched",
        flush_policy=FlushPolicy(coalesce_limit=8, flush_deadline=4096),
    )
    assert _secured_bytes(batched_platform) == _secured_bytes(cores_platform)
    assert batched_report.packets_done == cores_report.packets_done == 64
    assert batched_report.payload_bytes == cores_report.payload_bytes
    # The removed per-packet submit path must never run.
    assert batched_report.core_submits == 0
    assert cores_report.core_submits == 64
    assert batched_report.batches > 0
    assert batched_report.queue_peak() > 1


def test_batched_at_acceptance_scale_stays_off_the_core_path():
    """8 channels x 64 packets, coalesce width 32, zero core submits."""
    configs = _mixed_configs(channels=8, packets=64)
    platform, report = _run(
        configs,
        "batched",
        flush_policy=FlushPolicy(coalesce_limit=32, flush_deadline=8192),
    )
    assert report.packets_done == 512
    assert report.core_submits == 0
    assert platform.mccp.scheduler.requests_submitted == 0
    assert report.batches >= 512 // 32
    assert sum(report.flush_causes.values()) == report.batches
    # Every secured packet equals the sequential one-call fast path
    # (itself pinned byte-identical to the reference and core paths).
    channels = platform.mccp.scheduler.channels
    checked = 0
    for transfer in platform.comm.completed.values():
        job = transfer.job
        channel = channels[transfer.channel_id]
        key = platform.mccp.key_memory.fetch_for_scheduler(channel.key_id)
        seal = gcm_seal if channel.algorithm is Algorithm.GCM else ccm_seal
        expected = seal(key, job.nonce, job.data, job.aad, channel.tag_length)
        assert transfer.ok and (transfer.payload, transfer.tag) == expected
        checked += 1
    assert checked == 512


def test_ctr_channels_fall_back_to_the_cores_engine():
    """Non-batchable channels ride the same pipeline at width 1."""
    configs = _mixed_configs(channels=2, packets=4) + [
        ChannelConfig(
            RadioStandard.UMTS_LIKE,
            bytes(16),
            TrafficPattern.SATURATING,
            packets=4,
        )
    ]
    platform, report = _run(configs, "batched")
    assert report.packets_done == 12
    assert report.core_submits == 4  # the CTR channel only
    assert platform.mccp.scheduler.channels[2].stats.get("batches", 0) == 0


def test_two_core_ccm_falls_back_to_the_cores_engine():
    configs = [
        ChannelConfig(
            RadioStandard.WIFI,
            bytes(16),
            TrafficPattern.SATURATING,
            packets=3,
            two_core_ccm=True,
        )
    ]
    _, report = _run(configs, "batched")
    assert report.packets_done == 3
    assert report.core_submits == 3


# -- ragged payloads and auth-failure injection --------------------------------


@pytest.mark.parametrize("algorithm,tag_length,nbytes", [
    (Algorithm.GCM, 16, 12),
    (Algorithm.CCM, 8, 13),
])
def test_ragged_roundtrip_with_tamper_injection(algorithm, tag_length, nbytes, rb):
    """Seal ragged packets, reopen with one forged tag mid-batch."""
    sim, mccp, channel, comm = _comm_setup(
        algorithm, tag_length, FlushPolicy(coalesce_limit=4, flush_deadline=None)
    )
    sizes = (1, 16, 48, 333, 1024, 2048, 7, 100)
    packets = [
        Packet(channel.channel_id, rb(12), rb(size), sequence=i)
        for i, size in enumerate(sizes)
    ]
    finished = sim.event("sealed")

    def seal_proc():
        jobs = [comm.submit_job(channel, p) for p in packets]
        yield from comm.flush_now(channel)
        finished.trigger(jobs)

    sim.add_process(seal_proc())
    jobs = sim.run_until_event(finished)
    sealed = [job.transfer for job in jobs]
    for packet, transfer in zip(packets, sealed):
        assert transfer.ok and len(transfer.tag) == tag_length
        assert len(transfer.payload) == len(packet.payload)

    tampered = 3
    reopened = sim.event("opened")

    def open_proc():
        jobs = []
        for i, (packet, transfer) in enumerate(zip(packets, sealed)):
            jobs.append(
                comm.submit_job(
                    channel,
                    Packet(
                        channel.channel_id,
                        packet.header,
                        transfer.payload,
                        sequence=packet.sequence,
                    ),
                    direction=Direction.DECRYPT,
                    nonce=comm.nonce_for(channel, packet.sequence),
                    tag=bytes(tag_length) if i == tampered else transfer.tag,
                )
            )
        yield from comm.flush_now(channel)
        reopened.trigger(jobs)

    sim.add_process(open_proc())
    open_jobs = sim.run_until_event(reopened)
    for i, (packet, job) in enumerate(zip(packets, open_jobs)):
        if i == tampered:
            assert not job.transfer.ok and job.transfer.payload == b""
        else:
            # Failed lanes must not perturb surviving lanes' outputs.
            assert job.transfer.ok
            assert job.transfer.payload == packet.payload
    assert channel.auth_failures == 1
    assert comm.auth_failures == 1
    assert len(comm.latencies) == 2 * len(packets)


# -- flush policy ---------------------------------------------------------------


def test_size_threshold_dispatches_without_explicit_flush():
    sim, _, channel, comm = _comm_setup(
        policy=FlushPolicy(coalesce_limit=4, flush_deadline=None)
    )
    jobs = []

    def proc():
        for i in range(4):
            jobs.append(comm.submit_job(channel, Packet(0, b"", b"x" * 32, sequence=i)))
        return
        yield  # pragma: no cover - makes this a generator

    sim.add_process(proc())
    sim.run()
    assert all(job.transfer is not None and job.transfer.ok for job in jobs)
    assert channel.stats["flush_size"] == 1
    assert channel.pending_count == 0


def test_idle_deadline_flushes_underfilled_batch():
    deadline = 600
    sim, _, channel, comm = _comm_setup(
        policy=FlushPolicy(coalesce_limit=32, flush_deadline=deadline)
    )
    jobs = []

    def proc():
        for i in range(3):
            jobs.append(comm.submit_job(channel, Packet(0, b"", b"y" * 64, sequence=i)))
        return
        yield  # pragma: no cover

    sim.add_process(proc())
    sim.run()
    assert all(job.transfer is not None for job in jobs)
    assert channel.stats["flush_deadline"] == 1
    # The batch left no earlier than the deadline, and the oldest job
    # waited at least the full deadline before dispatch began.
    assert all(job.completed_cycle >= deadline for job in jobs)


def test_size_only_policy_waits_for_explicit_drain():
    sim, _, channel, comm = _comm_setup(
        policy=FlushPolicy(coalesce_limit=8, flush_deadline=None)
    )
    jobs = []

    def enqueue_proc():
        for i in range(3):
            jobs.append(comm.submit_job(channel, Packet(0, b"", b"z" * 16, sequence=i)))
        return
        yield  # pragma: no cover

    sim.add_process(enqueue_proc())
    sim.run()
    assert channel.pending_count == 3
    assert all(job.transfer is None for job in jobs)

    def drain_proc():
        yield from comm.flush_now(channel)

    sim.add_process(drain_proc())
    sim.run()
    assert channel.pending_count == 0
    assert all(job.transfer is not None for job in jobs)
    assert channel.stats["flush_forced"] == 1


def test_deadline_zero_dispatches_on_the_enqueue_cycle():
    sim, _, channel, comm = _comm_setup(
        policy=FlushPolicy(coalesce_limit=32, flush_deadline=0)
    )
    jobs = []

    def proc():
        jobs.append(comm.submit_job(channel, Packet(0, b"", b"q" * 16)))
        return
        yield  # pragma: no cover

    sim.add_process(proc())
    sim.run()
    (job,) = jobs
    assert job.transfer is not None and job.transfer.ok
    assert channel.stats["flush_deadline"] == 1


def test_process_packet_is_the_width1_pipeline(rb):
    """The per-packet helper rides the same job abstraction."""
    sim, mccp, channel, comm = _comm_setup()
    done = sim.event("done")

    def proc():
        transfer = yield from comm.process_packet(
            channel, Packet(0, rb(8), rb(100), sequence=9)
        )
        done.trigger(transfer)

    sim.add_process(proc())
    transfer = sim.run_until_event(done, limit=10_000_000)
    assert transfer.ok
    assert transfer.job is not None and transfer.job.via_cores
    assert transfer.channel_id == channel.channel_id
    assert transfer.sequence == 9
    assert transfer.request is not None
    assert comm.completed[transfer.request.request_id] is transfer


def test_flush_policy_validation():
    with pytest.raises(ValueError):
        FlushPolicy(coalesce_limit=8, flush_deadline=-1)
    policy = FlushPolicy(coalesce_limit=0)
    assert policy.coalesce_limit == 1  # clamped


def test_workload_report_dataplane_stats():
    configs = _mixed_configs(channels=4, packets=8)
    _, report = _run(
        configs,
        "batched",
        flush_policy=FlushPolicy(coalesce_limit=4, flush_deadline=2048),
    )
    assert set(report.per_channel_queue_peak) == {0, 1, 2, 3}
    assert report.queue_peak() >= 1
    assert report.batches == sum(report.per_channel_batches.values())
    assert report.mean_batch_width() > 0
    assert report.backpressure_retries == 0


def test_nonce_spaces_are_disjoint_at_default_seed():
    """nonce_for must never collide with the next_nonce counter on a
    shared key — GCM/CCM nonce reuse would be catastrophic."""
    sim, _, channel, comm = _comm_setup()
    counter_nonces = {comm.next_nonce(channel.algorithm) for _ in range(64)}
    deterministic = {comm.nonce_for(channel, seq) for seq in range(64)}
    assert not counter_nonces & deterministic
    # Marker bit: every deterministic nonce has the top bit set.
    assert all(n[0] & 0x80 for n in deterministic)
    assert all(not n[0] & 0x80 for n in counter_nonces)


def test_reused_platform_reports_per_run_counters():
    """A second run_workload on one platform must not inherit the
    first run's submits/latencies (cores-then-batched comparison)."""
    platform = SdrPlatform(core_count=4, seed=2)
    configs = _mixed_configs(channels=2, packets=4)
    first = platform.run_workload(configs, dataplane="cores")
    assert first.core_submits == 8 and len(first.latencies) == 8
    second = platform.run_workload(
        _mixed_configs(channels=2, packets=4), dataplane="batched"
    )
    assert second.core_submits == 0
    assert second.backpressure_retries == 0
    assert len(second.latencies) == 8
    assert second.mean_batch_width() > 0


# -- execution backends ---------------------------------------------------------


def test_backends_byte_identical_and_identically_ordered():
    """Acceptance: the 8-channel mixed GCM/CCM workload produces the
    same secured bytes AND the same CompletedTransfer ordering under
    inline, thread and process execution (rx traffic included, so the
    seal/open split genuinely exercises both directions)."""
    from repro.crypto.fast.exec import ProcessPoolBackend, ThreadPoolBackend

    def run(backend):
        platform = SdrPlatform(core_count=4, seed=11)
        report = platform.run_workload(
            _mixed_configs(channels=8, packets=8),
            dataplane="batched",
            flush_policy=FlushPolicy(coalesce_limit=8, flush_deadline=4096),
            backend=backend,
            rx_fraction=0.4,
            corrupt_rate=0.2,
        )
        order = [
            (t.channel_id, t.sequence)
            for t in platform.comm.completed.values()
        ]
        return report, order, _secured_bytes(platform)

    inline_report, inline_order, inline_bytes = run(None)
    thread_backend = ThreadPoolBackend(workers=3)
    process_backend = ProcessPoolBackend(workers=2)
    try:
        for backend in (thread_backend, process_backend):
            report, order, secured = run(backend)
            assert secured == inline_bytes
            assert order == inline_order
            assert report.total_cycles == inline_report.total_cycles
            assert report.auth_failures == inline_report.auth_failures
            assert report.core_submits == 0
    finally:
        thread_backend.close()
        process_backend.close()
    assert inline_report.auth_failures > 0  # the split saw both sweeps


def test_run_workload_backend_is_scoped_to_the_run():
    platform = SdrPlatform(core_count=4, seed=3)
    assert platform.comm.backend is None
    platform.run_workload(
        _mixed_configs(channels=2, packets=4),
        dataplane="batched",
        backend="thread:2",
    )
    assert platform.comm.backend is None  # restored after the run


def test_close_refused_while_batch_in_flight():
    """A popped batch mid-dispatch must still block channel teardown:
    the jobs have left `pending` but their completions haven't fired,
    and closing in that window would silently drop them."""
    from repro.errors import ChannelError

    sim, mccp, channel, comm = _comm_setup(
        policy=FlushPolicy(coalesce_limit=2, flush_deadline=None)
    )

    def enqueue():
        comm.submit_job(channel, Packet(0, b"", b"a" * 64, sequence=0))
        comm.submit_job(channel, Packet(0, b"", b"b" * 64, sequence=1))
        return
        yield  # pragma: no cover

    sim.add_process(enqueue())
    # The size-triggered drain pops the batch, then yields simulated
    # control/transfer time; stop inside that window.
    sim.run(until=5)
    assert channel.pending_count == 0 and channel.in_flight == 2
    with pytest.raises(ChannelError, match="in flight"):
        mccp.close_channel(channel.channel_id)
    sim.run()
    assert channel.in_flight == 0
    mccp.close_channel(channel.channel_id)
