"""The session layer: plans, arrivals, rekey/handoff, determinism."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.throughput import ClassSla, SlaSpec
from repro.radio.admission import AdmissionPolicy
from repro.radio.sessions import (
    DEFAULT_MIX,
    PriorityClass,
    SessionManager,
    SessionProfile,
    SessionWorkload,
    build_session_plans,
    run_sessions,
    session_key_material,
)
from repro.radio.standards import RadioStandard

#: Small-but-real storm the execution tests share.
STORM = SessionWorkload(sessions=10, horizon_cycles=40_000)
SEED = 7


def _single_profile_mix(**overrides):
    profile = SessionProfile(
        name="solo",
        standard=RadioStandard.WIFI,
        priority=PriorityClass.INTERACTIVE,
        packets_mean=10,
        packet_gap_cycles=2_000,
        **overrides,
    )
    return (profile,)


def _transfers(manager):
    return {
        (t.channel_id, t.sequence): (t.payload, t.tag)
        for t in manager.platform.comm.completed.values()
    }


class TestValidation:
    def test_ctr_standard_rejected_from_the_mix(self):
        # UMTS-like is a CTR stream: no tag, not batchable, and the
        # session layer rides the batched dataplane.
        with pytest.raises(ValueError, match="AEAD standards only"):
            SessionProfile(
                name="stream",
                standard=RadioStandard.UMTS_LIKE,
                priority=PriorityClass.BULK,
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"weight": 0.0},
            {"packets_mean": 0},
            {"packet_gap_cycles": 0},
            {"rekey_interval": 0},
            {"handoff_fraction": 1.5},
        ],
    )
    def test_bad_profile_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SessionProfile(
                name="bad",
                standard=RadioStandard.WIFI,
                priority=PriorityClass.BULK,
                **kwargs,
            )

    def test_cores_dataplane_rejected(self):
        with pytest.raises(ValueError, match="batched or pipelined"):
            SessionWorkload(dataplane="cores")

    def test_unknown_arrival_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival profile"):
            SessionWorkload(arrival="flat")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sessions": 0},
            {"horizon_cycles": 0},
            {"mix": ()},
            {"pipeline_depth": 0},
            {"queue_capacity": 0},
            {"key_bytes": 20},
        ],
    )
    def test_bad_workload_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SessionWorkload(**kwargs)


class TestPlans:
    def test_plans_are_a_pure_function_of_workload_and_seed(self):
        assert build_session_plans(STORM, SEED) == build_session_plans(
            STORM, SEED
        )
        assert build_session_plans(STORM, SEED) != build_session_plans(
            STORM, SEED + 1
        )

    @pytest.mark.parametrize("arrival", ["poisson", "bursty", "diurnal"])
    def test_arrivals_are_ordered_and_inside_the_horizon(self, arrival):
        plans = build_session_plans(
            replace(STORM, arrival=arrival, sessions=40), SEED
        )
        cycles = [p.arrival_cycle for p in plans]
        assert cycles == sorted(cycles)
        assert all(0 < c <= STORM.horizon_cycles for c in cycles)

    def test_every_plan_carries_at_least_one_packet(self):
        for plan in build_session_plans(replace(STORM, sessions=64), SEED):
            assert plan.total_packets >= 1
            assert [s.segment for s in plan.segments] in ([0], [0, 1])

    def test_key_material_is_deterministic_and_epoch_sensitive(self):
        a = session_key_material(SEED, 3, 0, 0)
        assert a == session_key_material(SEED, 3, 0, 0)
        assert len(a) == 16
        assert a != session_key_material(SEED, 3, 0, 1)  # epoch
        assert a != session_key_material(SEED, 4, 0, 0)  # session
        assert a != session_key_material(SEED + 1, 3, 0, 0)  # seed
        assert len(session_key_material(SEED, 3, 0, 0, key_bytes=32)) == 32


class TestProvisioning:
    def test_every_planned_segment_is_pre_opened(self):
        manager = SessionManager.provisioned(STORM, seed=SEED)
        plans = build_session_plans(STORM, SEED)
        expected = {
            (p.sid, s.segment) for p in plans for s in p.segments
        }
        assert set(manager.channels) == expected
        assert all(c.is_open for c in manager.channels.values())

    def test_channel_ids_do_not_depend_on_throttling(self):
        plain = SessionManager.provisioned(STORM, seed=SEED)
        throttled = SessionManager.provisioned(
            replace(
                STORM,
                queue_capacity=4,
                admission=AdmissionPolicy(defer_cycles=400, max_defers=32),
            ),
            seed=SEED,
        )
        assert {
            key: channel.channel_id for key, channel in plain.channels.items()
        } == {
            key: channel.channel_id
            for key, channel in throttled.channels.items()
        }


class TestExecution:
    def test_storm_runs_to_teardown_and_reproduces(self):
        first = run_sessions(STORM, seed=SEED)
        again = run_sessions(STORM, seed=SEED)
        assert first.sessions_started == STORM.sessions
        assert first.sessions_completed == STORM.sessions
        assert first.packets_done > 0
        assert first.packets_done == again.packets_done
        assert first.total_cycles == again.total_cycles
        assert first.latencies == again.latencies

    def test_batched_and_pipelined_agree(self):
        batched = run_sessions(STORM, seed=SEED)
        piped = run_sessions(
            replace(STORM, dataplane="pipelined"), seed=SEED
        )
        assert piped.packets_done == batched.packets_done
        assert piped.payload_bytes == batched.payload_bytes
        assert piped.total_cycles == batched.total_cycles

    def test_counters_match_the_plan(self):
        plans = build_session_plans(STORM, SEED)
        report = run_sessions(STORM, seed=SEED)
        expected_handoffs = sum(
            1 for p in plans if len(p.segments) == 2
        )
        expected_rekeys = sum(
            (p.total_packets - 1) // p.profile.rekey_interval
            for p in plans
            if p.profile.rekey_interval is not None
        )
        assert report.handoffs == expected_handoffs
        assert report.rekeys == expected_rekeys
        assert report.packets_done == sum(p.total_packets for p in plans)

    def test_rekey_changes_the_bytes_on_the_air(self):
        base = replace(
            STORM, sessions=4, mix=_single_profile_mix(rekey_interval=None)
        )
        rekeyed = replace(
            base, mix=_single_profile_mix(rekey_interval=4)
        )
        manager_a = SessionManager.provisioned(base, seed=SEED)
        manager_a.run()
        manager_b = SessionManager.provisioned(rekeyed, seed=SEED)
        report_b = manager_b.run()
        a, b = _transfers(manager_a), _transfers(manager_b)
        # Same storm shape (the rekey knob does not perturb the plan)...
        assert set(a) == set(b)
        assert report_b.rekeys > 0
        # ...epoch-0 packets identical, post-rekey packets re-secured
        # under fresh material.
        assert any(a[key] == b[key] for key in a)
        assert any(a[key] != b[key] for key in a)
        assert report_b.auth_failures == 0


class TestOverloadedSessions:
    def test_shedding_protects_control_and_reproduces(self):
        protected = replace(
            STORM,
            sessions=16,
            arrival="bursty",
            queue_capacity=4,
            admission=AdmissionPolicy(defer_cycles=400, max_defers=32),
        )
        first = run_sessions(protected, seed=SEED)
        again = run_sessions(protected, seed=SEED)
        piped = run_sessions(
            replace(protected, dataplane="pipelined"), seed=SEED
        )
        assert first.sessions_completed == protected.sessions
        assert first.queue_peak() <= 4
        assert first.shed_by_class.get(int(PriorityClass.CONTROL), 0) == 0
        assert first.shed_packets == again.shed_packets
        assert first.shed_packets == piped.shed_packets
        assert first.auth_failures == 0 and first.dead_lettered == 0

    def test_control_class_sla_holds_under_pressure(self):
        protected = replace(
            STORM,
            sessions=16,
            arrival="bursty",
            queue_capacity=4,
            admission=AdmissionPolicy(defer_cycles=400, max_defers=32),
        )
        report = run_sessions(protected, seed=SEED)
        spec = SlaSpec(
            classes={
                int(PriorityClass.CONTROL): ClassSla(
                    p99_us=10_000.0, max_drop_fraction=0.0
                )
            },
            max_auth_failures=0,
            max_dead_lettered=0,
        )
        assert report.check_sla(spec) == []
        summary = report.sla_summary()
        assert "control" in summary or report.per_class_latencies


def test_default_mix_covers_all_three_classes():
    assert {int(p.priority) for p in DEFAULT_MIX} == {0, 1, 2}
