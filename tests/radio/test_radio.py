"""Radio substrate: formatting invariants, packets, traffic, platform."""

import pytest

from repro import ChannelConfig, Direction, SdrPlatform
from repro.core.params import Algorithm
from repro.errors import NonceError, ProtocolError
from repro.radio import (
    format_ccm_single,
    format_ccm_two_core,
    format_ctr,
    format_gcm,
    format_task,
    format_whirlpool,
)
from repro.radio.packet import MAX_PAYLOAD_BYTES, Packet, SecuredPacket
from repro.radio.standards import STANDARD_PROFILES, RadioStandard
from repro.radio.traffic import TrafficGenerator, TrafficPattern


def test_gcm_layout_and_counts(rb):
    task = format_gcm(128, rb(12), rb(20), rb(100), Direction.ENCRYPT)
    # zero | J0 | 2 AAD | 7 data | length = 12 blocks
    assert len(task.input_blocks) == 12
    assert task.params.aad_blocks == 2
    assert task.params.data_blocks == 7
    assert task.params.final_block_bytes == 4
    assert task.input_blocks[0] == bytes(16)
    assert task.input_blocks[1][-4:] == b"\x00\x00\x00\x01"
    # length block encodes bit lengths
    assert task.input_blocks[-1] == (160).to_bytes(8, "big") + (800).to_bytes(8, "big")


def test_gcm_decrypt_requires_tag(rb):
    with pytest.raises(ProtocolError):
        format_gcm(128, rb(12), b"", rb(16), Direction.DECRYPT)


def test_ccm_single_layout(rb):
    nonce = rb(13)
    task = format_ccm_single(128, nonce, rb(8), rb(32), Direction.ENCRYPT, 8)
    # B0 | 1 AAD | A1 | 2 data | A0
    assert len(task.input_blocks) == 6
    b0 = task.input_blocks[0]
    assert b0[0] & 0x40  # AAD present flag
    assert b0[1:14] == nonce
    a1 = task.input_blocks[2]
    assert a1[0] == 1 and a1[-2:] == b"\x00\x01"
    a0 = task.input_blocks[-1]
    assert a0[-2:] == b"\x00\x00"


def test_ccm_two_core_split_shares_params(rb):
    mac, ctr = format_ccm_two_core(128, rb(13), rb(10), rb(64), Direction.ENCRYPT, 8)
    assert mac.params.role.name == "MAC" and ctr.params.role.name == "CTR"
    assert mac.params.data_blocks == ctr.params.data_blocks == 4
    # encrypt: MAC core receives the plaintext through its own FIFO
    assert len(mac.input_blocks) == 1 + 1 + 4


def test_nonce_length_enforced(rb):
    with pytest.raises(NonceError):
        format_gcm(128, rb(11), b"", b"", Direction.ENCRYPT)
    with pytest.raises(NonceError):
        format_ccm_single(128, rb(12), b"", b"", Direction.ENCRYPT)
    with pytest.raises(NonceError):
        format_ctr(128, rb(15), b"")


def test_format_task_dispatch(rb):
    t = format_task(Algorithm.WHIRLPOOL, 128, Direction.ENCRYPT, data=rb(10))
    assert t.params.algorithm is Algorithm.WHIRLPOOL
    pair = format_task(
        Algorithm.CCM, 128, Direction.ENCRYPT, nonce=rb(13), data=rb(16), two_core=True
    )
    assert isinstance(pair, tuple) and len(pair) == 2


def test_whirlpool_padding_block_counts(rb):
    for n in (0, 31, 32, 33, 64):
        task = format_whirlpool(rb(n))
        assert len(task.input_blocks) % 4 == 0
        assert task.params.data_blocks == len(task.input_blocks) // 4


def test_packet_limits(rb):
    with pytest.raises(ProtocolError):
        Packet(0, b"", bytes(MAX_PAYLOAD_BYTES + 1))
    p = Packet(0, rb(4), rb(10), priority=0)
    assert p.total_bytes == 14
    s = SecuredPacket(0, b"h", b"cc", b"tt", b"n")
    assert s.total_bytes == 5


def test_standard_profiles_sane():
    for profile in STANDARD_PROFILES.values():
        assert profile.payload_bytes <= MAX_PAYLOAD_BYTES
        assert profile.key_bits in (128, 192, 256)
        assert profile.nominal_rate_mbps > 0


@pytest.mark.parametrize("pattern", list(TrafficPattern), ids=lambda p: p.value)
def test_traffic_generators_deterministic(pattern):
    profile = STANDARD_PROFILES[RadioStandard.WIFI]
    a = TrafficGenerator(1, profile, pattern, seed=5).generate(6)
    b = TrafficGenerator(1, profile, pattern, seed=5).generate(6)
    assert [(g.arrival_cycle, g.packet.payload) for g in a] == [
        (g.arrival_cycle, g.packet.payload) for g in b
    ]
    arrivals = [g.arrival_cycle for g in a]
    assert arrivals == sorted(arrivals)


def test_platform_multichannel_workload():
    plat = SdrPlatform(core_count=4, seed=3)
    cfgs = [
        ChannelConfig(RadioStandard.WIFI, bytes(16), TrafficPattern.SATURATING, packets=3),
        ChannelConfig(RadioStandard.UMTS_LIKE, bytes(16), TrafficPattern.SATURATING, packets=3),
    ]
    report = plat.run_workload(cfgs)
    assert report.packets_done == 6
    assert report.throughput_mbps() > 0
    assert len(report.per_channel_bytes) == 2
    assert report.mean_latency_us() > 0
    assert report.max_latency_us() >= report.mean_latency_us()
