"""Receive-side workload generation (rx_fraction / loss / corruption).

The platform plays the peer radio: an rx packet arrives pre-sealed
under the channel key and deterministic per-(channel, sequence) nonce,
the channel model may lose it or corrupt its tag, and the dataplane
must decrypt survivors, reject forgeries per-packet, and tally
everything in :class:`WorkloadReport`.  Decisions derive only from
(seed, channel, sequence), so the same mixed workload replays
identically through both dataplanes and every execution backend.
"""

import pytest

from repro.mccp.channel import FlushPolicy
from repro.radio.sdr_platform import ChannelConfig, SdrPlatform
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern

_MIXED = (
    RadioStandard.TACTICAL_VOICE,
    RadioStandard.WIFI,
    RadioStandard.SATCOM,
    RadioStandard.WIMAX,
)


def _configs(channels=4, packets=12, **kwargs):
    configs = []
    for index in range(channels):
        standard = _MIXED[index % len(_MIXED)]
        key = bytes(32) if standard is RadioStandard.SATCOM else bytes(16)
        configs.append(
            ChannelConfig(
                standard, key, TrafficPattern.SATURATING, packets=packets,
                **kwargs,
            )
        )
    return configs


def _run(configs, dataplane, **kwargs):
    platform = SdrPlatform(core_count=4, seed=23)
    report = platform.run_workload(
        configs,
        dataplane=dataplane,
        flush_policy=FlushPolicy(coalesce_limit=8, flush_deadline=4096),
        **kwargs,
    )
    transfers = {
        (t.channel_id, t.sequence): (t.payload, t.tag, t.ok)
        for t in platform.comm.completed.values()
    }
    return platform, report, transfers


def test_rx_traffic_replays_identically_on_both_dataplanes():
    kwargs = dict(rx_fraction=0.5, loss_rate=0.2, corrupt_rate=0.3)
    _, batched, batched_bytes = _run(_configs(), "batched", **kwargs)
    _, cores, cores_bytes = _run(_configs(), "cores", **kwargs)
    assert batched_bytes == cores_bytes
    assert batched.rx_packets == cores.rx_packets > 0
    assert batched.rx_lost == cores.rx_lost > 0
    assert batched.auth_failures == cores.auth_failures > 0
    assert (
        batched.packets_done
        == cores.packets_done
        == 4 * 12 - batched.rx_lost
    )


def test_rx_decrypts_release_the_original_payload():
    platform, report, transfers = _run(
        _configs(channels=2, packets=16), "batched", rx_fraction=0.6
    )
    assert report.rx_lost == 0 and report.auth_failures == 0
    assert report.rx_packets > 0
    decrypts = [
        t for t in platform.comm.completed.values()
        if t.job is not None and t.job.direction.name == "DECRYPT"
    ]
    assert len(decrypts) == report.rx_packets
    # Decrypt completions carry the recovered plaintext, no tag.
    for transfer in decrypts:
        assert transfer.ok and transfer.tag is None
        assert len(transfer.payload) == len(transfer.job.data)


def test_corrupted_tags_fail_auth_without_disturbing_batchmates():
    platform, report, _ = _run(
        _configs(channels=2, packets=16), "batched",
        rx_fraction=1.0, corrupt_rate=0.25,
    )
    assert report.rx_packets == 32
    assert 0 < report.auth_failures < 32
    assert report.auth_failures == platform.comm.auth_failures
    ok_payloads = [
        t for t in platform.comm.completed.values()
        if t.ok and t.job is not None
    ]
    failed = [t for t in platform.comm.completed.values() if not t.ok]
    assert len(failed) == report.auth_failures
    assert all(t.payload == b"" for t in failed)
    assert all(len(t.payload) > 0 for t in ok_payloads)
    # Per-channel auth_failures counters add up to the report's tally.
    channels = platform.mccp.scheduler.channels.values()
    assert sum(c.auth_failures for c in channels) == report.auth_failures


def test_full_loss_processes_nothing_but_counts_everything():
    _, report, transfers = _run(
        _configs(channels=1, packets=8), "batched",
        rx_fraction=1.0, loss_rate=1.0,
    )
    assert report.rx_packets == report.rx_lost == 8
    assert report.packets_done == 0 and not transfers
    assert report.auth_failures == 0


def test_ctr_channels_ignore_rx_and_keep_transmitting():
    """Non-AEAD channels have no tag to verify; rx does not apply."""
    configs = [
        ChannelConfig(
            RadioStandard.UMTS_LIKE, bytes(16), TrafficPattern.SATURATING,
            packets=6,
        )
    ]
    platform, report, _ = _run(
        configs, "cores", rx_fraction=1.0, corrupt_rate=1.0
    )
    assert report.rx_packets == 0 and report.auth_failures == 0
    assert report.packets_done == 6


def test_per_config_rx_knobs_override_run_level():
    configs = _configs(channels=2, packets=10)
    configs[0].rx_fraction = 1.0
    configs[0].loss_rate = 1.0
    _, report, transfers = _run(configs, "batched", rx_fraction=0.0)
    # Channel 0 lost everything; channel 1 stayed pure tx.
    assert report.rx_packets == report.rx_lost == 10
    assert report.packets_done == 10
    assert {cid for cid, _ in transfers} == {1}


@pytest.mark.parametrize(
    "bad",
    [
        {"rx_fraction": 1.5},
        {"rx_fraction": -0.1},
        {"rx_fraction": 0.5, "loss_rate": 5.0},
        {"rx_fraction": 0.5, "corrupt_rate": -2.0},
    ],
)
def test_rx_rates_outside_unit_interval_are_rejected(bad):
    """A typo'd probability (5.0 meaning 0.5) must fail loudly, not
    silently lose every packet."""
    platform = SdrPlatform(core_count=4, seed=23)
    bad_knob = next(k for k, v in bad.items() if not 0.0 <= v <= 1.0)
    with pytest.raises(ValueError, match=bad_knob):
        platform.run_workload(_configs(channels=1, packets=2), **bad)
    # Per-config values go through the same validation.
    configs = _configs(channels=1, packets=2)
    for knob, value in bad.items():
        setattr(configs[0], knob, value)
    with pytest.raises(ValueError, match="must be within"):
        platform.run_workload(configs)


def test_rx_workloads_agree_across_backends():
    """rx workloads under every backend agree byte-for-byte."""
    kwargs = dict(rx_fraction=0.5, corrupt_rate=0.5)
    _, inline_report, inline_bytes = _run(_configs(), "batched", **kwargs)
    for backend in ("thread:3", "process:2"):
        _, report, transfers = _run(
            _configs(), "batched", backend=backend, **kwargs
        )
        assert transfers == inline_bytes
        assert report.auth_failures == inline_report.auth_failures
        assert report.rx_packets == inline_report.rx_packets


@pytest.mark.parametrize("dataplane", ["cores", "batched"])
def test_workload_report_latency_excludes_lost_packets(dataplane):
    _, report, _ = _run(
        _configs(channels=2, packets=10), dataplane,
        rx_fraction=0.5, loss_rate=0.5,
    )
    assert len(report.latencies) == report.packets_done
    assert report.packets_done == 20 - report.rx_lost
