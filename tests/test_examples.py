"""Every example runs as a parametrized smoke test (and in CI).

Examples are documentation that executes; this keeps them from rotting
silently when the APIs they showcase move.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_exist():
    assert {path.name for path in EXAMPLES} >= {
        "quickstart.py",
        "multichannel_radio.py",
        "reconfiguration.py",
        "scheduling_policies.py",
        "experiment_sweep.py",
    }


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(example):
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{example.name} failed\n--- stdout ---\n{result.stdout}"
        f"\n--- stderr ---\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{example.name} printed nothing"
