"""Cryptographic Unit: ISA, bank, cores, timing, instruction semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.crypto.aes import expand_key
from repro.crypto import aes_encrypt_block, ghash
from repro.errors import BankAddressError, DecodeError, UnitError
from repro.sim.fifo import WordFifo
from repro.sim.kernel import Simulator
from repro.unit import BankRegister, CryptoUnit, CuOp, cu_decode, cu_encode
from repro.unit.cores.inc_core import inc16
from repro.unit.cores.io_core import IoCore
from repro.unit.cores.xor_core import mask_for_bytes, masked_equal, masked_xor
from repro.unit.timing import DEFAULT_TIMING


# -- CU instruction encoding -----------------------------------------------------

@given(st.sampled_from(sorted(CuOp)), st.integers(0, 3), st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_cu_encode_decode(op, a, b):
    assert cu_decode(cu_encode(op, a, b)) == (op, a, b)


def test_cu_decode_rejects():
    with pytest.raises(DecodeError):
        cu_decode(0xF0)  # opcode 0xF unused
    with pytest.raises(DecodeError):
        cu_encode(CuOp.XOR, 4, 0)


# -- bank register ---------------------------------------------------------------

def test_bank_read_write_subwords(rb):
    bank = BankRegister()
    value = rb(16)
    bank.write(2, value)
    assert bank.read(2) == value
    words = [bank.read_subword(2, i) for i in range(4)]
    assert b"".join(w.to_bytes(4, "big") for w in words) == value
    bank.write_subword(2, 1, 0xDEADBEEF)
    assert bank.read(2)[4:8] == bytes.fromhex("deadbeef")


def test_bank_bounds(rb):
    bank = BankRegister()
    with pytest.raises(BankAddressError):
        bank.read(4)
    with pytest.raises(BankAddressError):
        bank.write(0, rb(15))
    with pytest.raises(BankAddressError):
        bank.read_subword(0, 4)


# -- functional cores --------------------------------------------------------------

def test_mask_for_bytes():
    assert mask_for_bytes(16) == 0xFFFF
    assert mask_for_bytes(0) == 0
    assert mask_for_bytes(8) == 0xFF00
    with pytest.raises(UnitError):
        mask_for_bytes(17)


def test_masked_xor_and_equal(rb):
    a, b = rb(16), rb(16)
    full = masked_xor(a, b, 0xFFFF)
    assert full == bytes(x ^ y for x, y in zip(a, b))
    half = masked_xor(a, b, 0xFF00)
    assert half[:8] == full[:8] and half[8:] == bytes(8)
    assert masked_equal(a, a, 0xFFFF)
    assert masked_equal(a, a[:8] + rb(8), 0xFF00)


def test_inc16_semantics():
    block = bytes(14) + b"\x00\xff"
    assert inc16(block, 1)[-2:] == b"\x01\x00"
    assert inc16(block, 4)[-2:] == b"\x01\x03"
    with pytest.raises(UnitError):
        inc16(block, 5)


# -- the unit end to end ------------------------------------------------------------

def make_unit(key=bytes(16)):
    sim = Simulator()
    in_f = WordFifo(sim, 64, "in")
    out_f = WordFifo(sim, 64, "out")
    io = IoCore(in_f, out_f)
    schedule = expand_key(key)
    unit = CryptoUnit(sim, io, lambda: schedule, DEFAULT_TIMING, name="cu")
    return sim, unit, in_f, out_f


def test_saes_faes_value_and_timing(rb):
    key, block = rb(16), rb(16)
    sim, unit, _, _ = make_unit(key)
    unit.bank.write(0, block)
    unit.start(cu_encode(CuOp.SAES, 0))
    unit.start(cu_encode(CuOp.FAES, 1))  # queues, issues at SAES completion
    sim.run()
    assert unit.bank.read(1) == aes_encrypt_block(key, block)
    # SAES occupies 6, then FAES completes at 44 + 5.
    assert sim.now == DEFAULT_TIMING.aes_busy(128) + DEFAULT_TIMING.finalize_tail


def test_ghash_pipeline(rb):
    h, x1, x2 = rb(16), rb(16), rb(16)
    sim, unit, _, _ = make_unit()
    unit.bank.write(0, h)
    unit.bank.write(1, x1)
    unit.start(cu_encode(CuOp.LOADH, 0))
    unit.start(cu_encode(CuOp.SGFM, 1))
    sim.run()
    unit.bank.write(1, x2)
    unit.start(cu_encode(CuOp.SGFM, 1))
    unit.start(cu_encode(CuOp.FGFM, 2))
    sim.run()
    assert unit.bank.read(2) == ghash(h, x1 + x2)


def test_load_store_roundtrip(rb):
    sim, unit, in_f, out_f = make_unit()
    block = rb(16)
    in_f.push_block(block)
    unit.start(cu_encode(CuOp.LOAD, 3))
    unit.start(cu_encode(CuOp.STORE, 3))
    sim.run()
    assert out_f.pop_block() == block


def test_load_stalls_until_data(rb):
    sim, unit, in_f, _ = make_unit()
    unit.start(cu_encode(CuOp.LOAD, 0))
    sim.run()
    assert unit.busy  # stalled
    block = rb(16)
    in_f.push_block(block)
    sim.run()
    assert not unit.busy
    assert unit.bank.read(0) == block


def test_xor_equ_respect_mask(rb):
    sim, unit, _, _ = make_unit()
    a = rb(16)
    unit.bank.write(0, a)
    unit.bank.write(1, a[:4] + rb(12))
    unit.set_mask_high(0xF0)
    unit.set_mask_low(0x00)
    unit.start(cu_encode(CuOp.EQU, 0, 1))
    sim.run()
    assert unit.equ_flag  # only the first 4 bytes compared


def test_status_byte_and_reset(rb):
    sim, unit, _, _ = make_unit()
    unit.bank.write(0, rb(16))
    unit.start(cu_encode(CuOp.SAES, 0))
    assert unit.status_byte() & 0x8  # busy
    sim.run()
    unit.start(cu_encode(CuOp.FAES, 0))
    sim.run()
    unit.reset_for_packet()
    assert unit.bank.read(0) == bytes(16)
    assert unit.mask == 0xFFFF


def test_faes_without_saes_raises():
    sim, unit, _, _ = make_unit()
    with pytest.raises(UnitError):
        unit.start(cu_encode(CuOp.FAES, 0))


def test_icrecv_without_wire_raises(rb):
    sim, unit, _, _ = make_unit()
    unit.bank.write(0, rb(16))
    with pytest.raises(UnitError):
        unit.start(cu_encode(CuOp.ICSEND, 0))


def test_intercore_transfer(rb):
    sim, a, _, _ = make_unit()
    in_f = WordFifo(sim, 16, "b.in")
    out_f = WordFifo(sim, 16, "b.out")
    b = CryptoUnit(sim, IoCore(in_f, out_f), lambda: expand_key(bytes(16)), DEFAULT_TIMING, name="b")
    a.ic_out = b.ic_in
    block = rb(16)
    a.bank.write(2, block)
    a.start(cu_encode(CuOp.ICSEND, 2))
    b.start(cu_encode(CuOp.ICRECV, 1))
    sim.run()
    assert b.bank.read(1) == block
    assert b.ic_in.transfers == 1


def test_call_when_idle_waits_for_queue_drain(rb):
    """Idle callbacks fire only after the issue queue empties — the
    core's task-completion hand-off must not race queued tail STOREs
    (the ``reset while busy`` hazard under load)."""
    sim, unit, _, out_f = make_unit()
    unit.bank.write(0, rb(16))
    unit.start(cu_encode(CuOp.XOR, 0, 1))
    unit.start(cu_encode(CuOp.STORE, 1))   # queued behind the XOR
    fired = []
    unit.call_when_idle(lambda: fired.append(sim.now))
    assert not fired  # still busy, callback deferred
    sim.run()
    assert fired and not unit.busy and not unit._queue
    assert out_f.can_pop()  # the STORE landed before the callback
    # Already idle: runs immediately.
    unit.call_when_idle(lambda: fired.append(-1))
    assert fired[-1] == -1
