"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import contextlib
import random
import signal
import threading

import pytest

from repro.core.crypto_core import CryptoCore
from repro.core.harness import run_task
from repro.crypto.aes import expand_key
from repro.sim.kernel import Simulator
from repro.sim.tracing import TraceRecorder
from repro.unit.timing import DEFAULT_TIMING


@pytest.fixture
def rng():
    """Deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def rb(rng):
    """Deterministic random-bytes factory."""

    def _rb(n: int) -> bytes:
        return bytes(rng.getrandbits(8) for _ in range(n))

    return _rb


def run_single_core(task, key=None, trace=None):
    """Run one formatted task on a fresh single core; returns (run, core, sim)."""
    sim = Simulator()
    core = CryptoCore(sim, DEFAULT_TIMING, trace=trace)
    if key is not None:
        core.key_cache.install(expand_key(key), 8 * len(key))
    run = run_task(sim, core, task)
    return run, core, sim


@pytest.fixture
def single_core_runner():
    """Fixture exposing :func:`run_single_core`."""
    return run_single_core


@pytest.fixture
def hang_guard():
    """Wall-clock guard for tests that exercise hang recovery.

    ``pytest-timeout`` is not a baked-in dependency, so this is a
    SIGALRM-based stand-in: ``with hang_guard(seconds):`` fails the
    test (rather than hanging the whole suite) if the block overruns.
    Degrades to a no-op where SIGALRM cannot be armed (non-main
    thread, platforms without setitimer).
    """

    @contextlib.contextmanager
    def _guard(seconds: float):
        can_alarm = (
            hasattr(signal, "SIGALRM")
            and hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread()
        )
        if not can_alarm:
            yield
            return

        def _expired(signum, frame):
            raise TimeoutError(
                f"hang_guard: test block exceeded {seconds:.1f}s wall clock"
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    return _guard


@pytest.fixture
def traced_runner():
    """Runner that also returns an enabled trace recorder."""

    def _run(task, key=None):
        trace = TraceRecorder(enabled=True)
        run, core, sim = run_single_core(task, key, trace)
        return run, core, sim, trace

    return _run
