"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.crypto_core import CryptoCore
from repro.core.harness import run_task
from repro.crypto.aes import expand_key
from repro.sim.kernel import Simulator
from repro.sim.tracing import TraceRecorder
from repro.unit.timing import DEFAULT_TIMING


@pytest.fixture
def rng():
    """Deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def rb(rng):
    """Deterministic random-bytes factory."""

    def _rb(n: int) -> bytes:
        return bytes(rng.getrandbits(8) for _ in range(n))

    return _rb


def run_single_core(task, key=None, trace=None):
    """Run one formatted task on a fresh single core; returns (run, core, sim)."""
    sim = Simulator()
    core = CryptoCore(sim, DEFAULT_TIMING, trace=trace)
    if key is not None:
        core.key_cache.install(expand_key(key), 8 * len(key))
    run = run_task(sim, core, task)
    return run, core, sim


@pytest.fixture
def single_core_runner():
    """Fixture exposing :func:`run_single_core`."""
    return run_single_core


@pytest.fixture
def traced_runner():
    """Runner that also returns an enabled trace recorder."""

    def _run(task, key=None):
        trace = TraceRecorder(enabled=True)
        run, core, sim = run_single_core(task, key, trace)
        return run, core, sim, trace

    return _run
